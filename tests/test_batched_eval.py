"""Tests for the batched population-evaluation fast path (PR 3).

Covers the predictor's batched forward (bit-identical to the sequential
path), the evolution engine's ``evaluate_many`` hook, the two bugfixes
(``knn_indices`` self-loop padding, degenerate ``num_parents``) and the
batched-vs-sequential equivalence of a full HGNAS search.
"""

import dataclasses

import numpy as np
import pytest

from repro.graph.knn import knn_graph, knn_indices
from repro.hardware import get_device
from repro.nas import HGNAS, HGNASConfig
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.nas.evolution import EvolutionConfig, EvolutionarySearch
from repro.nas.latency_eval import (
    EvaluatorRequest,
    OracleLatencyEvaluator,
    evaluate_latencies,
    make_latency_evaluator,
)
from repro.predictor.batch import collate_graphs, forward_graph_batch
from repro.predictor.evaluator import PredictorLatencyEvaluator
from repro.predictor.model import LatencyPredictor, PredictorConfig
from repro.utils.timer import VirtualClock


@pytest.fixture(scope="module")
def population():
    """A mixed-size population of random architectures plus a predictor."""
    space = DesignSpace(DesignSpaceConfig(num_positions=12))
    rng = np.random.default_rng(7)
    architectures = [space.random_architecture(rng) for _ in range(40)]
    predictor = LatencyPredictor(PredictorConfig(gcn_dims=(16, 24, 24), mlp_dims=(16, 8)))
    predictor.set_target_normalization(1.5, 0.7)
    return architectures, predictor


class TestBatchedPredictor:
    def test_predict_many_bit_identical(self, population):
        architectures, predictor = population
        sequential = np.array([predictor.predict_latency_ms(arch) for arch in architectures])
        batched = predictor.predict_many(architectures)
        np.testing.assert_array_equal(sequential, batched)

    def test_predict_many_graphs_bit_identical(self, population):
        architectures, predictor = population
        graphs = [predictor.encode(arch) for arch in architectures]
        sequential = np.array([predictor.predict_from_graph(graph) for graph in graphs])
        np.testing.assert_array_equal(sequential, predictor.predict_many_graphs(graphs))

    def test_empty_and_single(self, population):
        architectures, predictor = population
        assert predictor.predict_many([]).shape == (0,)
        single = predictor.predict_many(architectures[:1])
        assert single.shape == (1,)
        assert single[0] == predictor.predict_latency_ms(architectures[0])

    def test_collate_shapes_and_padding(self, population):
        architectures, predictor = population
        graphs = [predictor.encode(arch) for arch in architectures]
        batch = collate_graphs(graphs)
        counts = np.array([graph.num_nodes for graph in graphs])
        assert batch.num_graphs == len(graphs)
        assert batch.max_nodes == counts.max()
        np.testing.assert_array_equal(batch.node_counts, counts)
        assert batch.flat_rows.shape == (counts.sum(),)
        # Padded feature rows stay zero; valid rows match the originals.
        for index, graph in enumerate(graphs):
            n = graph.num_nodes
            np.testing.assert_array_equal(batch.features[index, :n], graph.features)
            assert not batch.features[index, n:].any()

    def test_collate_empty_raises(self):
        with pytest.raises(ValueError):
            collate_graphs([])

    def test_mixed_size_forward_close(self, population):
        # The padded mixed-size forward (used when callers skip the
        # size-grouped path) is numerically equivalent, though not
        # guaranteed bit-exact across BLAS kernels.
        architectures, predictor = population
        graphs = [predictor.encode(arch) for arch in architectures]
        batch = collate_graphs(graphs)
        from repro.nn.tensor import no_grad

        with no_grad():
            batched = forward_graph_batch(predictor, batch).numpy()
        sequential = np.array([predictor.forward_graph(graph).item() for graph in graphs])
        np.testing.assert_allclose(batched, sequential, rtol=1e-9)

    def test_predictor_evaluator_batch(self, population):
        architectures, predictor = population
        evaluator = PredictorLatencyEvaluator(predictor)
        batched = evaluator.evaluate_many(architectures[:8])
        sequential = np.array([evaluator.evaluate(arch) for arch in architectures[:8]])
        np.testing.assert_array_equal(batched, sequential)


class TestEvaluateLatencies:
    def test_dispatches_to_evaluate_many(self, population):
        architectures, _ = population
        evaluator = OracleLatencyEvaluator(get_device("jetson-tx2"))
        out = evaluate_latencies(evaluator, architectures[:5])
        np.testing.assert_array_equal(
            out, [evaluator.evaluate(arch) for arch in architectures[:5]]
        )
        assert evaluate_latencies(evaluator, []).shape == (0,)

    def test_falls_back_without_evaluate_many(self, population):
        architectures, _ = population

        class Plain:
            query_cost_s = 0.0

            def evaluate(self, architecture):
                return 1.5

        out = evaluate_latencies(Plain(), architectures[:3])
        np.testing.assert_array_equal(out, [1.5, 1.5, 1.5])

    def test_registry_evaluators_batch_matches_sequential(self, population):
        architectures, predictor = population
        for name in ("oracle", "measurement", "predictor"):
            batch = evaluate_latencies(
                make_latency_evaluator(
                    name, EvaluatorRequest(device=get_device("jetson-tx2"), predictor=predictor)
                ),
                architectures[:6],
            )
            # Fresh evaluator: stochastic oracles must draw identical noise.
            sequential_evaluator = make_latency_evaluator(
                name, EvaluatorRequest(device=get_device("jetson-tx2"), predictor=predictor)
            )
            sequential = [sequential_evaluator.evaluate(arch) for arch in architectures[:6]]
            np.testing.assert_array_equal(batch, sequential)


class TestKnnRegression:
    def test_single_point_raises(self):
        # Regression: a 1-point cloud used to silently emit a self-loop even
        # though include_self=False promised none.
        with pytest.raises(ValueError):
            knn_indices(np.zeros((1, 3)), k=2)
        with pytest.raises(ValueError):
            knn_graph(np.zeros((1, 3)), k=2)

    def test_single_point_include_self(self):
        idx = knn_indices(np.zeros((1, 3)), k=3, include_self=True)
        np.testing.assert_array_equal(idx, [[0]])

    def test_all_duplicate_cloud_no_self_loops(self):
        for n in (2, 3, 5, 9):
            points = np.ones((n, 3))
            idx = knn_indices(points, k=4)
            assert idx.shape == (n, min(4, n - 1))
            assert not np.any(idx == np.arange(n)[:, None])
            edge_index = knn_graph(points, k=4)
            assert not np.any(edge_index[0] == edge_index[1])

    def test_no_self_loops_random_clouds(self, rng):
        for n in (2, 3, 7, 30):
            points = rng.normal(size=(n, 3))
            idx = knn_indices(points, k=5)
            assert idx.shape == (n, min(5, n - 1))
            assert not np.any(idx == np.arange(n)[:, None])

    def test_neighbours_sorted_by_distance(self, rng):
        points = rng.normal(size=(20, 3))
        idx = knn_indices(points, k=6)
        for i in range(20):
            dists = ((points[idx[i]] - points[i]) ** 2).sum(axis=1)
            assert np.all(np.diff(dists) >= 0)

    def test_include_self_k1(self, rng):
        points = rng.normal(size=(5, 3))
        idx = knn_indices(points, k=1, include_self=True)
        np.testing.assert_array_equal(idx[:, 0], np.arange(5))


class TestEvolutionBatched:
    @staticmethod
    def _make_search(rng, evaluate_many=None, **config_kwargs):
        config = EvolutionConfig(**{"population_size": 8, **config_kwargs})
        return EvolutionarySearch(
            config,
            initialize=lambda r: int(r.integers(0, 100)),
            mutate=lambda x, r, n: int(np.clip(x + r.integers(-5, 6), 0, 100)),
            evaluate=lambda x: -abs(x - 42.0),
            crossover=lambda a, b, r: (a + b) // 2,
            rng=rng,
            evaluation_cost_s=0.3,
            evaluate_many=evaluate_many,
        )

    def test_batched_matches_sequential(self):
        sequential = self._make_search(np.random.default_rng(3)).run(12)
        batched = self._make_search(
            np.random.default_rng(3),
            evaluate_many=lambda xs: np.array([-abs(x - 42.0) for x in xs]),
        ).run(12)
        assert batched.best == sequential.best
        assert batched.best_score == sequential.best_score
        assert batched.evaluations == sequential.evaluations
        assert [dataclasses.astuple(p) for p in batched.history] == [
            dataclasses.astuple(p) for p in sequential.history
        ]
        assert batched.population == sequential.population

    def test_batch_deduplicates_and_caches(self):
        calls: list[int] = []

        def evaluate_many(xs):
            calls.append(len(xs))
            return np.array([float(x) for x in xs])

        search = EvolutionarySearch(
            EvolutionConfig(population_size=6),
            initialize=lambda r: int(r.integers(0, 3)),
            mutate=lambda x, r, n: int((x + 1) % 3),
            evaluate=lambda x: float(x),
            rng=np.random.default_rng(0),
            evaluate_many=evaluate_many,
        )
        search.run(10)
        # Only 3 distinct genotypes exist; the cache must hold evaluations
        # at 3 regardless of how many cohorts were scored.
        assert sum(calls) <= 3
        assert search.evaluations <= 3

    def test_evaluate_many_bad_shape_raises(self):
        search = self._make_search(
            np.random.default_rng(0), evaluate_many=lambda xs: np.zeros(len(xs) + 1)
        )
        with pytest.raises(ValueError):
            search.run(1)

    def test_population_size_two_improves(self):
        # Regression: population_size=2 with parent_fraction=0.5 used to
        # produce num_parents=2 and therefore zero children per generation,
        # freezing the search at its random initial population.
        search = EvolutionarySearch(
            EvolutionConfig(population_size=2, parent_fraction=0.5),
            initialize=lambda r: 0,
            mutate=lambda x, r, n: x + 1,
            evaluate=lambda x: float(x),
            rng=np.random.default_rng(0),
        )
        result = search.run(10)
        assert result.best_score > result.history[0].best_score
        assert result.best_score == 10.0

    def test_num_parents_clamped(self):
        assert EvolutionConfig(population_size=2, parent_fraction=0.5).num_parents == 1
        assert EvolutionConfig(population_size=2, parent_fraction=1.0).num_parents == 1
        assert EvolutionConfig(population_size=20, parent_fraction=0.5).num_parents == 10
        assert EvolutionConfig(population_size=4, parent_fraction=0.25).num_parents == 2


class TestSearchEquivalence:
    def test_full_search_batched_matches_sequential(self, tiny_train, tiny_test):
        config = HGNASConfig(
            num_positions=6,
            hidden_dim=12,
            supernet_k=4,
            num_classes=4,
            population_size=4,
            function_iterations=1,
            operation_iterations=2,
            function_epochs=1,
            operation_epochs=1,
            batch_size=5,
            eval_max_batches=1,
            paths_per_function_eval=1,
            seed=0,
        )
        predictor = LatencyPredictor(PredictorConfig(gcn_dims=(16, 24, 24), mlp_dims=(16, 8)))
        predictor.set_target_normalization(1.5, 0.7)
        results = {}
        for batched in (True, False):
            search = HGNAS.for_device(
                dataclasses.replace(config, batched_evaluation=batched),
                tiny_train,
                tiny_test,
                get_device("jetson-tx2"),
                latency_oracle="predictor",
                predictor=predictor,
                rng=np.random.default_rng(0),
            )
            results[batched] = search.run()
        batched_result, sequential_result = results[True], results[False]
        assert (
            batched_result.best_architecture.key() == sequential_result.best_architecture.key()
        )
        assert batched_result.best_score == sequential_result.best_score
        assert batched_result.search_time_s == sequential_result.search_time_s
        assert batched_result.evaluations == sequential_result.evaluations
        assert [dataclasses.astuple(p) for p in batched_result.history] == [
            dataclasses.astuple(p) for p in sequential_result.history
        ]


class TestEvolutionClock:
    def test_batched_clock_matches_sequential(self):
        def run(evaluate_many):
            clock = VirtualClock()
            search = EvolutionarySearch(
                EvolutionConfig(population_size=5),
                initialize=lambda r: int(r.integers(0, 50)),
                mutate=lambda x, r, n: int(np.clip(x + r.integers(-3, 4), 0, 50)),
                evaluate=lambda x: float(x),
                rng=np.random.default_rng(11),
                clock=clock,
                evaluation_cost_s=0.01,  # not exactly representable: order-sensitive
                evaluate_many=evaluate_many,
            )
            return search.run(6), clock.now

        sequential_result, sequential_clock = run(None)
        batched_result, batched_clock = run(lambda xs: [float(x) for x in xs])
        assert batched_clock == sequential_clock
        assert [dataclasses.astuple(p) for p in batched_result.history] == [
            dataclasses.astuple(p) for p in sequential_result.history
        ]
