"""Tests for the GNN latency predictor: encoding, graph abstraction, model,
dataset generation, training and the search evaluator."""

import numpy as np
import pytest

from repro.hardware import estimate_latency, get_device
from repro.nas import DesignSpace, DesignSpaceConfig, dgcnn_architecture, rtx_fast_architecture
from repro.predictor import (
    FEATURE_DIM,
    NODE_TYPES,
    LatencyPredictor,
    PredictorConfig,
    PredictorLatencyEvaluator,
    PredictorTrainingConfig,
    architecture_to_graph,
    compute_metrics,
    encode_global_node,
    encode_node_type,
    encode_operation_node,
    encode_terminal_node,
    error_bound_accuracy,
    evaluate_predictor,
    generate_predictor_dataset,
    mape,
    train_predictor,
)


class TestEncoding:
    def test_node_type_one_hot(self):
        for i, node_type in enumerate(NODE_TYPES):
            vec = encode_node_type(node_type)
            assert vec.sum() == 1.0 and vec[i] == 1.0
        with pytest.raises(ValueError):
            encode_node_type("conv")

    def test_operation_node_features(self):
        arch = dgcnn_architecture()
        ops = arch.effective_ops()
        for op in ops:
            vec = encode_operation_node(op)
            assert vec.shape == (FEATURE_DIM - 3,)
            assert np.all(vec >= 0)

    def test_terminal_and_global_nodes(self):
        assert encode_terminal_node("input").shape == (FEATURE_DIM - 3,)
        with pytest.raises(ValueError):
            encode_terminal_node("global")
        vec = encode_global_node(1024, 20, 8)
        assert vec.shape == (FEATURE_DIM - 3,)
        with pytest.raises(ValueError):
            encode_global_node(0, 20, 8)


class TestArchGraph:
    def test_graph_structure_with_global_node(self):
        arch = dgcnn_architecture()
        graph = architecture_to_graph(arch, num_points=1024, k=20)
        num_ops = len(arch.effective_ops())
        assert graph.num_nodes == num_ops + 3  # input + output + global
        assert graph.features.shape == (graph.num_nodes, FEATURE_DIM)
        assert graph.node_labels[0] == "input"
        assert graph.node_labels[-1] == "global"
        # global node connected to everything in both directions
        global_index = graph.num_nodes - 1
        assert graph.adjacency[global_index, :-1].sum() == num_ops + 2
        assert graph.adjacency[:-1, global_index].sum() == num_ops + 2

    def test_graph_without_global_node(self):
        graph = architecture_to_graph(rtx_fast_architecture(), include_global_node=False)
        assert "global" not in graph.node_labels
        # pure chain: n-1 edges
        assert graph.adjacency.sum() == graph.num_nodes - 1

    def test_aggregation_matrix_self_loops(self):
        graph = architecture_to_graph(rtx_fast_architecture())
        agg = graph.aggregation_matrix()
        assert np.all(np.diag(agg) >= 1.0)

    def test_to_networkx(self):
        graph = architecture_to_graph(rtx_fast_architecture())
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_nodes


class TestPredictorModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PredictorConfig(gcn_dims=(32, 32))
        with pytest.raises(ValueError):
            PredictorConfig(mlp_dims=())
        paper = PredictorConfig.paper_scale()
        assert paper.gcn_dims == (256, 512, 512)

    def test_prediction_positive(self):
        predictor = LatencyPredictor(PredictorConfig(gcn_dims=(8, 8, 8), mlp_dims=(8,)))
        value = predictor.predict_latency_ms(dgcnn_architecture())
        assert value >= 0.0

    def test_normalisation_setter(self):
        predictor = LatencyPredictor(PredictorConfig(gcn_dims=(8, 8, 8), mlp_dims=(8,)))
        predictor.set_target_normalization(2.0, 0.5)
        assert predictor.target_mean == 2.0
        with pytest.raises(ValueError):
            predictor.set_target_normalization(0.0, 0.0)

    def test_predict_many(self):
        predictor = LatencyPredictor(PredictorConfig(gcn_dims=(8, 8, 8), mlp_dims=(8,)))
        values = predictor.predict_many([dgcnn_architecture(), rtx_fast_architecture()])
        assert values.shape == (2,)


class TestMetrics:
    def test_mape(self):
        assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            mape(np.array([1.0]), np.array([1.0, 2.0]))

    def test_error_bound_accuracy(self):
        predicted = np.array([100.0, 130.0])
        measured = np.array([100.0, 100.0])
        assert error_bound_accuracy(predicted, measured, 0.1) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            error_bound_accuracy(predicted, measured, 0.0)

    def test_compute_metrics_spearman(self):
        measured = np.array([1.0, 2.0, 3.0, 4.0])
        metrics = compute_metrics(measured * 1.05, measured)
        assert metrics.spearman == pytest.approx(1.0)
        assert metrics.bound_accuracy_10 == pytest.approx(1.0)


class TestDatasetAndTraining:
    @pytest.fixture(scope="class")
    def space(self):
        return DesignSpace(DesignSpaceConfig(num_positions=8, k=10, num_points=256, num_classes=10))

    def test_dataset_generation(self, space):
        device = get_device("rtx3080")
        rng = np.random.default_rng(0)
        dataset = generate_predictor_dataset(space, device, 30, rng, measurement_noise=False)
        assert len(dataset) == 30
        # Noise-free labels must match the analytical model exactly.
        sample = dataset.samples[0]
        expected = estimate_latency(sample.architecture.to_workload(256, 10, 10), device).total_ms
        assert sample.latency_ms == pytest.approx(expected)

    def test_dataset_split(self, space, rng):
        device = get_device("jetson-tx2")
        dataset = generate_predictor_dataset(space, device, 20, rng)
        train, val = dataset.split(0.8, rng)
        assert len(train) + len(val) == 20
        assert len(val) >= 1
        with pytest.raises(ValueError):
            dataset.split(1.5, rng)

    def test_training_improves_over_initial(self, space):
        device = get_device("rtx3080")
        rng = np.random.default_rng(1)
        dataset = generate_predictor_dataset(space, device, 90, rng, num_points=1024, k=20)
        train, val = dataset.split(0.75, rng)
        predictor = LatencyPredictor(
            PredictorConfig(gcn_dims=(24, 32, 32), mlp_dims=(24,), num_points=1024, k=20)
        )
        before = evaluate_predictor(predictor, val).mape
        history = train_predictor(
            predictor, train, val, PredictorTrainingConfig(epochs=40, batch_size=16, learning_rate=0.01)
        )
        after = evaluate_predictor(predictor, val)
        assert history.num_epochs == 40
        assert after.mape < before
        assert after.spearman > 0.3

    def test_training_empty_dataset_rejected(self, space, rng):
        device = get_device("rtx3080")
        dataset = generate_predictor_dataset(space, device, 5, rng)
        dataset.samples = []
        predictor = LatencyPredictor(PredictorConfig(gcn_dims=(8, 8, 8), mlp_dims=(8,)))
        with pytest.raises(ValueError):
            train_predictor(predictor, dataset)

    def test_evaluator_interface(self, space, rng):
        predictor = LatencyPredictor(PredictorConfig(gcn_dims=(8, 8, 8), mlp_dims=(8,)))
        evaluator = PredictorLatencyEvaluator(predictor)
        value = evaluator.evaluate(space.random_architecture(rng))
        assert value >= 0.0
        assert evaluator.query_cost_s < 1.0
