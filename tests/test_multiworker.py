"""Tests for multi-process serving (repro.serving.pool / frontend / diskcache)."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.hardware.device import get_device
from repro.nas.presets import device_fast_architecture
from repro.serving import (
    AdmissionError,
    DeadlineExceededError,
    EngineConfig,
    InferenceEngine,
    ModelRegistry,
    PoolConfig,
    SharedArrayCache,
    WorkerCrashError,
    WorkerPoolEngine,
    deployment_fingerprint,
)
from repro.serving.frontend import AsyncServingFrontend, request_over_tcp


def _make_registry(name="model", device="raspberry-pi", num_classes=6, k=6, slo_ms=None, seed=0):
    registry = ModelRegistry()
    registry.register(
        name,
        device_fast_architecture(device),
        get_device(device),
        num_classes=num_classes,
        k=k,
        slo_ms=slo_ms,
        seed=seed,
    )
    return registry


def _clouds(rng, count, num_points=20):
    return [rng.standard_normal((num_points, 3)) for _ in range(count)]


class TestSharedArrayCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = SharedArrayCache(tmp_path)
        value = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert cache.get("k1") is None
        assert cache.put_if_absent("k1", value)
        np.testing.assert_array_equal(cache.get("k1"), value)
        assert "k1" in cache and len(cache) == 1

    def test_first_write_wins(self, tmp_path):
        cache = SharedArrayCache(tmp_path)
        cache.put_if_absent("k", np.array([1.0]))
        assert not cache.put_if_absent("k", np.array([2.0]))
        np.testing.assert_array_equal(cache.get("k"), [1.0])

    def test_two_instances_share_entries(self, tmp_path):
        writer = SharedArrayCache(tmp_path)
        reader = SharedArrayCache(tmp_path)
        writer.put_if_absent("k", np.array([3.0, 4.0]))
        np.testing.assert_array_equal(reader.get("k"), [3.0, 4.0])
        assert reader.stats().hits == 1

    def test_clear_and_stats(self, tmp_path):
        cache = SharedArrayCache(tmp_path)
        cache.put_if_absent("a", np.array([1.0]))
        cache.put_if_absent("b", np.array([2.0]))
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats_dict()["writes"] == 2


class TestDeploymentFingerprint:
    def test_stable_across_save_load(self, tmp_path):
        registry = _make_registry()
        registry.save(tmp_path / "reg")
        reloaded = ModelRegistry.load(tmp_path / "reg")
        assert deployment_fingerprint(registry.get("model"), "numpy") == deployment_fingerprint(
            reloaded.get("model"), "numpy"
        )

    def test_sensitive_to_weights_and_backend(self):
        entry_a = _make_registry(seed=0).get("model")
        entry_b = _make_registry(seed=99).get("model")
        assert deployment_fingerprint(entry_a, "numpy") != deployment_fingerprint(entry_b, "numpy")
        assert deployment_fingerprint(entry_a, "numpy") != deployment_fingerprint(entry_a, "numpy-blocked")


class TestPoolConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -2},
            {"request_timeout_s": 0.0},
            {"request_timeout_s": -1.0},
            {"max_queue_depth": 0},
            {"max_retries": -1},
            {"poll_interval_s": 0.0},
            {"start_method": "thread"},
        ],
    )
    def test_invalid_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            PoolConfig(**kwargs)

    def test_defaults_valid(self):
        assert PoolConfig().workers == 2


class TestWorkerPoolEngine:
    def test_serves_across_workers(self, rng):
        registry = _make_registry()
        with WorkerPoolEngine(registry, EngineConfig(max_batch_size=4), PoolConfig(workers=2)) as pool:
            results = pool.submit_many("model", _clouds(rng, 12))
            assert len(results) == 12
            assert all(result.logits.shape == (6,) for result in results)
            assert {result.worker for result in results} <= {0, 1}

    def test_bit_identical_to_in_process_engine(self, rng):
        registry = _make_registry()
        clouds = _clouds(rng, 8)
        # max_batch_size=1 pins the batch composition, the only source of
        # bitwise drift between engines (BLAS is not batch-shape stable).
        engine = InferenceEngine(registry, EngineConfig(max_batch_size=1))
        expected = [engine.submit("model", cloud).logits for cloud in clouds]
        with WorkerPoolEngine(registry, EngineConfig(max_batch_size=1), PoolConfig(workers=2)) as pool:
            results = pool.submit_many("model", clouds)
        for logits, result in zip(expected, results):
            np.testing.assert_array_equal(logits, result.logits)

    def test_frontend_admission_rejects_before_dispatch(self, rng):
        registry = _make_registry(slo_ms=1e-9)
        with WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=1)) as pool:
            with pytest.raises(AdmissionError):
                pool.request("model", _clouds(rng, 1)[0])
            assert pool.submitted == 0  # rejected before any IPC
            assert pool.telemetry.model("model").rejected == 1

    def test_submit_many_return_exceptions(self, rng):
        registry = _make_registry()
        good = _clouds(rng, 2)
        bad = np.full((20, 3), np.nan)
        with WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=1)) as pool:
            outcomes = pool.submit_many("model", [good[0], bad, good[1]], return_exceptions=True)
        assert outcomes[0].label >= 0 and outcomes[2].label >= 0
        assert isinstance(outcomes[1], ValueError)

    def test_deadline_expires_in_queue(self, rng):
        registry = _make_registry()
        with WorkerPoolEngine(
            registry, EngineConfig(), PoolConfig(workers=1, request_timeout_s=1e-6)
        ) as pool:
            with pytest.raises(DeadlineExceededError):
                pool.request("model", _clouds(rng, 1)[0])

    def test_crash_requeues_to_surviving_worker(self, rng):
        registry = _make_registry()
        pool = WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=2, max_retries=1))
        try:
            # Warm both workers so they are live, then force every new
            # request onto worker 0 by inflating worker 1's load.
            pool.submit_many("model", _clouds(rng, 2))
            pool._workers[1].inflight += 1000
            pool._workers[0].task_queue.put(("crash",))
            futures = [pool.submit("model", cloud) for cloud in _clouds(rng, 3)]
            pool._workers[1].inflight -= 1000
            results = [future.result(timeout=60) for future in futures]
            assert all(result.worker == 1 for result in results)
            assert pool.worker_crashes == 1
            assert pool.requeued == 3
        finally:
            pool.shutdown()

    def test_crash_with_no_survivor_fails_future(self, rng):
        registry = _make_registry()
        pool = WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=1, max_retries=1))
        try:
            pool.request("model", _clouds(rng, 1)[0])
            pool._workers[0].task_queue.put(("crash",))
            future = pool.submit("model", _clouds(rng, 1)[0])
            with pytest.raises(WorkerCrashError):
                future.result(timeout=60)
        finally:
            pool.shutdown()

    def test_crash_racing_shutdown_resolves_future(self, rng):
        """A worker dying while shutdown() drains must never strand a future."""
        registry = _make_registry()
        pool = WorkerPoolEngine(
            registry,
            EngineConfig(),
            PoolConfig(workers=1, max_retries=0, max_restarts=0, request_timeout_s=10.0),
        )
        pool.request("model", _clouds(rng, 1)[0])  # worker warm and live
        pool._workers[0].task_queue.put(("crash",))
        future = pool.submit("model", _clouds(rng, 1)[0])
        pool.shutdown(timeout=30)
        # The future resolved one way or the other: served before the crash
        # landed, failed by crash detection, or failed by the shutdown sweep.
        assert future.done()
        try:
            result = future.result(timeout=0)
            assert result.logits.shape == (6,)
        except (WorkerCrashError, DeadlineExceededError):
            pass

    def test_deadline_expiry_while_queued_resolves_future(self, rng):
        """A request a wedged worker never dequeues fails at deadline+grace."""
        from repro.faults import FaultPlan, FaultSpec, use_faults

        registry = _make_registry()
        plan = FaultPlan.of(
            FaultSpec(point="serving.worker.serve", action="delay", delay_s=2.0, times=1)
        )
        with use_faults(plan):
            pool = WorkerPoolEngine(
                registry,
                EngineConfig(),
                PoolConfig(
                    workers=1,
                    request_timeout_s=0.3,
                    deadline_grace_s=0.1,
                    heartbeat_timeout_s=0.0,  # keep the worker wedged, not restarted
                    max_retries=0,
                ),
            )
        try:
            start = time.monotonic()
            first = pool.submit("model", _clouds(rng, 1)[0])  # trips the 2s stall
            queued = pool.submit("model", _clouds(rng, 1)[0])  # sits behind it
            for future in (first, queued):
                with pytest.raises(DeadlineExceededError):
                    future.result(timeout=5)
            # Both futures resolved from the frontend sweep, well before the
            # stalled worker would have gotten to them.
            assert time.monotonic() - start < 1.5
        finally:
            pool.shutdown()

    def test_supervisor_restarts_crashed_worker(self, rng):
        """A fault-plan crash is requeued transparently and the slot restarted."""
        from repro.faults import FaultPlan, FaultSpec, use_faults

        registry = _make_registry()
        plan = FaultPlan.of(
            FaultSpec(point="serving.worker.serve", action="crash", times=1, match={"worker": 0})
        )
        with use_faults(plan):
            pool = WorkerPoolEngine(
                registry,
                EngineConfig(),
                PoolConfig(workers=2, max_retries=1, restart_backoff_s=0.05),
            )
        try:
            results = pool.submit_many("model", _clouds(rng, 8))
            assert len(results) == 8  # the crashed worker's request was requeued
            assert pool.worker_crashes == 1
            deadline = time.monotonic() + 10.0
            while pool.restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.restarts == 1
            # The restarted slot serves again (no fault left in the plan).
            assert len(pool.submit_many("model", _clouds(rng, 6))) == 6
        finally:
            pool.shutdown()

    def test_submit_after_shutdown_rejected(self, rng):
        registry = _make_registry()
        pool = WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=1))
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit("model", _clouds(rng, 1)[0])
        pool.shutdown()  # idempotent

    def test_shared_cache_spans_sequential_pools(self, rng, tmp_path):
        registry = _make_registry()
        clouds = _clouds(rng, 6)
        config = EngineConfig(max_batch_size=2)
        with WorkerPoolEngine(registry, config, PoolConfig(workers=2), root=tmp_path) as pool:
            first = pool.submit_many("model", clouds)
        # A fresh pool over the same root: every request is a disk hit.
        with WorkerPoolEngine(registry, config, PoolConfig(workers=2), root=tmp_path) as pool:
            second = pool.submit_many("model", clouds)
            assert all(result.from_cache for result in second)
        # Worker cache counters arrive with the shutdown snapshots.
        stats = pool.fleet_cache_stats()
        assert stats["shared"].hits >= len(clouds)
        for before, after in zip(first, second):
            np.testing.assert_array_equal(before.logits, after.logits)


class TestFleetTelemetry:
    def test_three_worker_merge_sums_and_percentiles(self, rng):
        """Satellite: N-way merge through ≥3 real worker processes."""
        registry = _make_registry()
        pool = WorkerPoolEngine(registry, EngineConfig(max_batch_size=2), PoolConfig(workers=3))
        try:
            results = pool.submit_many("model", _clouds(rng, 18))
            assert len({result.worker for result in results}) >= 2
        finally:
            pool.shutdown()
        assert sorted(pool.worker_snapshots) == [0, 1, 2]
        per_worker_served = []
        latencies: list[float] = []
        for snapshot in pool.worker_snapshots.values():
            models = snapshot["telemetry"]["models"]
            if "model" in models:
                per_worker_served.append(int(models["model"]["served"]["value"]))
                latencies.extend(models["model"]["latency"]["window"])
        fleet = pool.fleet_telemetry().model("model")
        # Counter sums: fleet served equals the sum of per-worker counts,
        # which equals the number of requests (nothing double-counted).
        assert fleet.served == sum(per_worker_served) == 18
        # Histogram coherence: the merged window is the concatenation of the
        # worker windows, so percentiles match a direct computation.
        assert len(latencies) == 18
        merged = fleet.latency_percentiles()
        for key, rank in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0)):
            assert merged[key] == pytest.approx(float(np.percentile(latencies, rank)))

    def test_report_includes_per_worker_breakdown(self, rng):
        registry = _make_registry()
        with WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=2)) as pool:
            pool.submit_many("model", _clouds(rng, 8))
            pool.shutdown()
            report = pool.report()
        assert set(report["workers"]) == {0, 1}
        assert report["frontend"]["submitted"] == 8
        total = sum(
            worker_report["models"]["model"]["served"]
            for worker_report in report["workers"].values()
            if "model" in worker_report["models"]
        )
        assert total == 8
        assert "fleet telemetry" in pool.format_report()

    def test_fleet_metrics_merge_worker_counters(self, rng):
        registry = _make_registry()
        with WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=2)) as pool:
            pool.submit_many("model", _clouds(rng, 6))
            pool.shutdown()
        merged = pool.fleet_metrics
        assert merged, "worker metrics snapshots should merge into a fleet view"
        served = merged.get("serving.worker.served")
        assert served is not None and int(served["value"]) == 6


class TestAsyncFrontend:
    def test_tcp_round_trip_and_errors(self, rng):
        registry = _make_registry()

        async def scenario():
            with WorkerPoolEngine(registry, EngineConfig(), PoolConfig(workers=2)) as pool:
                frontend = AsyncServingFrontend(pool)
                host, port = await frontend.start(port=0)
                requests = [
                    {"model": "model", "points": cloud.tolist()} for cloud in _clouds(rng, 4)
                ]
                requests.append({"model": "missing", "points": requests[0]["points"]})
                requests.append({"points": "not-a-cloud"})
                responses = await request_over_tcp(host, port, requests)
                await frontend.stop()
                return responses, frontend

        responses, frontend = asyncio.run(scenario())
        served = [response for response in responses if response["ok"]]
        failed = [response for response in responses if not response["ok"]]
        assert len(served) == 4 and frontend.requests_served == 4
        assert all(len(response["logits"]) == 6 for response in served)
        assert {response["error"] for response in failed} == {"KeyError", "BadRequest"}

    def test_async_submit_matches_sync(self, rng):
        registry = _make_registry()
        cloud = _clouds(rng, 1)[0]

        async def scenario(pool):
            frontend = AsyncServingFrontend(pool)
            return await frontend.submit("model", cloud)

        engine = InferenceEngine(registry, EngineConfig(max_batch_size=1))
        expected = engine.submit("model", cloud)
        with WorkerPoolEngine(registry, EngineConfig(max_batch_size=1), PoolConfig(workers=1)) as pool:
            result = asyncio.run(scenario(pool))
        np.testing.assert_array_equal(expected.logits, result.logits)


class TestWorkspacePoolServing:
    def test_serve_pool_reports_fleet_view(self, rng, tmp_path):
        from repro.workspace import Workspace

        workspace = Workspace(device="raspberry-pi", root=tmp_path)
        workspace.deploy(device_fast_architecture("raspberry-pi"), num_classes=6, name="demo")
        report = workspace.serve_pool(
            _clouds(rng, 6), name="demo", pool_config=PoolConfig(workers=2)
        )
        assert len(report.results) == 6
        assert report.workers == 2
        assert report.telemetry["frontend"]["submitted"] == 6
        # The shared tier lives under the workspace root and survives the pool.
        assert (tmp_path / "serving_cache").is_dir()
