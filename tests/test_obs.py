"""Tests for repro.obs: tracer, metrics, exporters, CLI tracing, telemetry."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.nas.evolution import EvolutionConfig, EvolutionarySearch
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_metrics,
    format_span_tree,
    list_runs,
    load_run,
    merge_snapshots,
    save_run,
    trace_span,
    use_metrics,
    use_tracer,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.serving.telemetry import ModelTelemetry, TelemetryStore
from repro.utils.timer import VirtualClock
from repro.workspace.store import ArtifactStore


class TestTracer:
    def test_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert sibling.parent_id == outer.span_id
        assert [span.name for span in tracer.spans] == ["outer", "middle", "inner", "sibling"]
        assert all(span.end is not None for span in tracer.spans)
        assert tracer.current is None

    def test_virtual_clock_driven(self):
        clock = VirtualClock()
        tracer = Tracer(clock=lambda: clock.now)
        with tracer.span("search") as span:
            clock.advance(30.0)
            with tracer.span("evaluation"):
                clock.advance(1.5)
        assert span.duration == pytest.approx(31.5)
        assert tracer.spans[1].duration == pytest.approx(1.5)

    def test_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        span = tracer.spans[0]
        assert span.status == "error"
        assert "RuntimeError: boom" in span.error
        assert span.end is not None
        assert tracer.current is None  # the stack unwound

    def test_decorator(self):
        tracer = Tracer()

        @trace_span("worker.step")
        def step(value):
            return value * 2

        with use_tracer(tracer):
            assert step(21) == 42
        assert tracer.spans[0].name == "worker.step"

    def test_max_spans_drops_and_counts(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ghost") as span:
            span.attributes["key"] = "value"  # must not raise
        assert tracer.spans == []
        assert tracer.snapshot() == []


class TestMetrics:
    def test_counter_merge_adds(self):
        a, b = Counter("calls"), Counter("calls")
        a.inc(3)
        b.inc(4)
        a.merge(b.snapshot())
        assert a.value == 7

    def test_gauge_aggregates(self):
        for aggregate, expected in (("max", 9.0), ("min", 2.0), ("sum", 11.0), ("last", 2.0)):
            a, b = Gauge("g", aggregate=aggregate), Gauge("g", aggregate=aggregate)
            a.set(9.0)
            b.set(2.0)
            a.merge(b.snapshot())
            assert a.value == expected, aggregate
        untouched = Gauge("g")
        untouched.merge(Gauge("g").snapshot())  # zero-update merge is inert
        assert untouched.value is None and untouched.updates == 0

    def test_histogram_observe_and_percentile(self):
        histogram = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(138.875)
        assert histogram.min == 0.5 and histogram.max == 500.0
        # Bucket-bound estimate without a window; overflow reports max.
        assert histogram.percentile(25.0) == 1.0
        assert histogram.percentile(100.0) == 500.0

    def test_histogram_window_exact_percentiles(self):
        histogram = Histogram("lat", window=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        # Window keeps (2, 3, 4); count keeps the full stream.
        assert histogram.count == 4
        assert histogram.percentile(50.0) == pytest.approx(3.0)

    def test_histogram_merge_commutative_and_associative(self):
        def build(values):
            histogram = Histogram("lat", buckets=(1.0, 10.0))
            for value in values:
                histogram.observe(value)
            return histogram

        parts = [(0.5, 20.0), (2.0,), (8.0, 0.1, 30.0)]

        def merged(order):
            target = Histogram("lat", buckets=(1.0, 10.0))
            for index in order:
                target.merge(build(parts[index]).snapshot())
            return target.snapshot()

        # Any merge order yields the same aggregate.
        assert merged((0, 1, 2)) == merged((2, 0, 1)) == merged((1, 2, 0))
        total = merged((0, 1, 2))
        assert total["count"] == 6
        assert total["counts"] == [2, 2, 2]
        assert total["min"] == 0.1 and total["max"] == 30.0

    def test_histogram_merge_rejects_mismatched_buckets(self):
        a = Histogram("lat", buckets=(1.0, 2.0))
        b = Histogram("lat", buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b.snapshot())

    def test_registry_type_conflict(self):
        registry = MetricsRegistry()
        registry.count("metric")
        with pytest.raises(ValueError, match="is a Counter"):
            registry.histogram("metric")

    def test_registry_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.count("layer.calls", 3)
        registry.set_gauge("layer.peak", 7.5)
        registry.observe("layer.latency_ms", 12.0, window=4)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == registry.snapshot()

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.count("calls")
        registry.observe("lat", 1.0)
        registry.set_gauge("peak", 2.0)
        assert len(registry) == 0

    def test_cross_process_snapshot_merge(self, tmp_path):
        """Two registries from separate processes merge into one aggregate."""
        script = (
            "import json, sys\n"
            "from repro.obs.metrics import MetricsRegistry\n"
            "registry = MetricsRegistry()\n"
            "worker = int(sys.argv[1])\n"
            "registry.count('serving.request.served', 10 * worker)\n"
            "registry.set_gauge('serving.queue.peak', float(worker))\n"
            "for value in range(worker):\n"
            "    registry.observe('serving.request.latency_ms', float(value))\n"
            "print(json.dumps(registry.snapshot()))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        snapshots = []
        for worker in (1, 2):
            result = subprocess.run(
                [sys.executable, "-c", script, str(worker)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            snapshots.append(json.loads(result.stdout))
        aggregate = merge_snapshots(*snapshots)
        assert aggregate["serving.request.served"]["value"] == 30
        assert aggregate["serving.queue.peak"]["value"] == 2.0
        latency = aggregate["serving.request.latency_ms"]
        assert latency["count"] == 3
        assert latency["sum"] == pytest.approx(1.0)  # 0 + (0 + 1)


class TestExport:
    def test_format_span_tree_nesting_and_errors(self):
        tracer = Tracer()
        with tracer.span("outer", device="tx2"):
            with pytest.raises(ValueError):
                with tracer.span("inner"):
                    raise ValueError("bad")
        rendered = format_span_tree(tracer)
        lines = rendered.splitlines()
        assert lines[0].startswith("- outer")
        assert "[device=tx2]" in lines[0]
        assert lines[1].startswith("  - inner")
        assert "!! ValueError: bad" in lines[1]

    def test_format_metrics_summary(self):
        registry = MetricsRegistry()
        registry.count("calls", 5)
        registry.observe("lat", 3.0)
        rendered = format_metrics(registry)
        assert "calls = 5" in rendered
        assert "lat: count=1" in rendered

    def test_save_load_run_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tracer = Tracer()
        registry = MetricsRegistry()
        with tracer.span("stage.one"):
            registry.count("stage.calls")
        key = save_run(store, "unit", tracer=tracer, metrics=registry)
        loaded_key, meta = load_run(store)
        assert loaded_key == key
        assert meta["label"] == "unit"
        assert [row["name"] for row in meta["spans"]] == ["stage.one"]
        assert meta["metrics"]["stage.calls"]["value"] == 1
        # Side files written next to the artifact for external tooling.
        spans_file = tmp_path / "obs" / key / "spans.jsonl"
        assert json.loads(spans_file.read_text().splitlines()[0])["name"] == "stage.one"
        assert (tmp_path / "obs" / key / "metrics.json").exists()
        assert [entry[0] for entry in list_runs(store)] == [key]

    def test_load_run_empty_store_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no observability runs"):
            load_run(ArtifactStore(tmp_path))


class TestEvolutionInstrumentation:
    def test_per_generation_spans_and_metrics(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        rng = np.random.default_rng(0)
        search = EvolutionarySearch(
            EvolutionConfig(population_size=4),
            initialize=lambda r: int(r.integers(0, 8)),
            mutate=lambda genotype, r, n: (genotype + 1) % 8,
            evaluate=lambda genotype: float(genotype),
            rng=rng,
            evaluation_cost_s=1.0,
        )
        with use_tracer(tracer), use_metrics(registry):
            result = search.run(iterations=3)
        spans = [span for span in tracer.spans if span.name == "nas.evolution.generation"]
        assert [span.attributes["iteration"] for span in spans] == [0, 1, 2, 3]
        assert sum(span.attributes["evaluations"] for span in spans) == search.evaluations
        assert sum(span.attributes["cache_hits"] for span in spans) == search.cache_hits
        assert sum(span.attributes["clock_s"] for span in spans) == pytest.approx(search.clock.now)
        assert spans[-1].attributes["best_fitness"] == result.best_score
        snapshot = registry.snapshot()
        assert snapshot["nas.evolution.generations"]["value"] == 4
        assert snapshot["nas.evolution.evaluations"]["value"] == search.evaluations
        assert snapshot["nas.evolution.best_fitness"]["value"] == result.best_score


class TestTelemetryOnObsPrimitives:
    def test_report_shape_golden(self):
        telemetry = ModelTelemetry(window=8)
        telemetry.record_request(latency_ms=4.0, queue_ms=1.0, from_cache=False)
        telemetry.record_request(latency_ms=6.0, queue_ms=3.0, from_cache=True)
        telemetry.record_batch(2)
        telemetry.record_rejection()
        telemetry.busy.elapsed = 0.5
        report = telemetry.report()
        assert report == {
            "served": 2,
            "rejected": 1,
            "batches": 1,
            "mean_batch_size": 2.0,
            "throughput_rps": 4.0,
            "busy_s": 0.5,
            "result_cache_hits": 1,
            "mean_queue_ms": 2.0,
            "latency_ms": {"p50": 5.0, "p95": 5.9, "p99": 5.98},
        }

    def test_custom_percentiles(self):
        telemetry = ModelTelemetry(window=100)
        for value in range(1, 101):
            telemetry.record_request(latency_ms=float(value), queue_ms=0.0, from_cache=False)
        percentiles = telemetry.latency_percentiles(percentiles=(25.0, 99.9))
        assert set(percentiles) == {"p25", "p99.9"}
        assert percentiles["p25"] == pytest.approx(25.75)
        store = TelemetryStore(window=100)
        store._models["m"] = telemetry
        report = store.report(percentiles=(25.0, 99.9))
        assert set(report["models"]["m"]["latency_ms"]) == {"p25", "p99.9"}

    def test_empty_percentiles_golden(self):
        assert ModelTelemetry().latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_worker_merge(self):
        workers = []
        for offset in (0.0, 10.0):
            telemetry = ModelTelemetry(window=8)
            telemetry.record_request(latency_ms=1.0 + offset, queue_ms=0.5, from_cache=False)
            telemetry.record_batch(1)
            telemetry.busy.elapsed = 0.25
            workers.append(telemetry)
        frontend = ModelTelemetry(window=8)
        for worker in workers:
            frontend.merge(worker.snapshot())
        assert frontend.served == 2
        assert frontend.batches == 2
        assert frontend.busy.elapsed == pytest.approx(0.5)
        assert sorted(frontend.latencies_ms) == [1.0, 11.0]

        store = TelemetryStore(window=8)
        store.observe_queue_depth(3)
        other = TelemetryStore(window=8)
        other._models["m"] = workers[0]
        other.observe_queue_depth(5)
        store.merge(other.snapshot())
        assert store.peak_queue_depth == 5
        assert store.model("m").served == 1


_TINY_SEARCH = [
    "search",
    "--device",
    "tx2",
    "--oracle",
    "predictor",
    "--num-positions",
    "6",
    "--population",
    "4",
    "--function-iterations",
    "1",
    "--operation-iterations",
    "2",
    "--classes",
    "4",
    "--samples-per-class",
    "4",
    "--points",
    "24",
]


class TestCliTracing:
    def test_search_trace_and_report_round_trip(self, tmp_path, capsys):
        argv = _TINY_SEARCH + ["--root", str(tmp_path), "--trace"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "== trace ==" in out
        # The span tree covers profile -> predictor -> search: dataset
        # labelling, predictor training, both search stages and the
        # per-generation events.
        assert "- cli.search" in out
        assert "- workspace.search" in out
        assert "workspace.train_predictor" in out
        assert "predictor.dataset.generate" in out
        assert "hardware.profile.calls" in out
        assert "predictor.batch.calls" in out
        assert "nas.search.stage1_supernet" in out
        assert "nas.search.stage2_operations" in out
        assert "nas.evolution.generation" in out
        assert "nas.supernet.epoch" in out
        assert "nas.evolution.generations" in out  # metrics section
        assert "obs run saved under key" in out

        assert cli_main(["report", "--root", str(tmp_path)]) == 0
        report = capsys.readouterr().out
        assert "== obs run 'search'" in report
        assert "nas.evolution.generation" in report
        assert "nas.evolution.generations" in report

        assert cli_main(["report", "--root", str(tmp_path), "--list"]) == 0
        assert "label=search" in capsys.readouterr().out

    def test_trace_out_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "trace"
        assert cli_main(["profile", "--device", "pi", "--trace-out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "- cli.profile" in out
        assert "- workspace.profile" in out
        rows = [json.loads(line) for line in (out_dir / "spans.jsonl").read_text().splitlines()]
        assert [row["name"] for row in rows[:2]] == ["cli.profile", "workspace.profile"]
        metrics = json.loads((out_dir / "metrics.json").read_text())
        assert metrics["hardware.profile.calls"]["value"] >= 1

    def test_global_flags_accepted_before_subcommand(self, capsys):
        assert cli_main(["-v", "--trace", "devices"]) == 0
        assert "- cli.devices" in capsys.readouterr().out

    def test_report_on_empty_store_is_exit_2(self, tmp_path, capsys):
        assert cli_main(["report", "--root", str(tmp_path)]) == 2
        assert "no observability runs" in capsys.readouterr().err

    def test_untraced_run_prints_no_trace(self, capsys):
        assert cli_main(["devices"]) == 0
        assert "== trace ==" not in capsys.readouterr().out
