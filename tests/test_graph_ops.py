"""Tests for graph operations: edge index, KNN, sampling, scatter, messages."""

import numpy as np
import pytest

from repro.graph import (
    add_self_loops,
    batched_knn_graph,
    batched_random_graph,
    build_messages,
    coalesce,
    degree,
    edges_to_dense,
    farthest_point_sampling,
    gcn_normalize,
    global_max_pool,
    global_mean_pool,
    global_sum_pool,
    knn_graph,
    knn_indices,
    message_dim,
    pack_clouds,
    pairwise_sq_dists,
    radius_graph,
    random_graph,
    remove_self_loops,
    scatter,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_sum,
    sort_by_target,
    subsample_points,
    sum_aggregation_matrix,
    to_undirected,
    unpack_clouds,
    validate_edge_index,
)
from repro.graph import (
    FUSED_MESSAGE_TYPES,
    fused_aggregate,
    fused_edgeconv,
    linearize_mlp,
    supports_fused,
    use_fused_kernels,
    validate_index,
)
from repro.models.edgeconv import EdgeConv
from repro.nn import MLP, BatchNorm1d, Linear, Sequential, Tensor, default_dtype, no_grad
from helpers import finite_difference_grad


class TestEdgeIndex:
    def test_validate_shape(self):
        with pytest.raises(ValueError):
            validate_edge_index(np.zeros((3, 4)))

    def test_validate_range(self):
        with pytest.raises(ValueError):
            validate_edge_index(np.array([[0, 5], [1, 2]]), num_nodes=3)

    def test_validate_negative(self):
        with pytest.raises(ValueError):
            validate_edge_index(np.array([[-1], [0]]))

    def test_coalesce_removes_duplicates(self):
        ei = np.array([[0, 0, 1], [1, 1, 2]])
        assert coalesce(ei).shape == (2, 2)

    def test_self_loop_helpers(self):
        ei = np.array([[0, 1], [1, 1]])
        with_loops = add_self_loops(ei, 3)
        assert with_loops.shape[1] == 5
        without = remove_self_loops(with_loops)
        assert not np.any(without[0] == without[1])

    def test_to_undirected_symmetric(self):
        ei = np.array([[0], [1]])
        und = to_undirected(ei, 2)
        pairs = {tuple(col) for col in und.T.tolist()}
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_degree(self):
        ei = np.array([[0, 1, 2], [1, 1, 0]])
        np.testing.assert_array_equal(degree(ei, 3, "in"), [1, 2, 0])
        np.testing.assert_array_equal(degree(ei, 3, "out"), [1, 1, 1])
        with pytest.raises(ValueError):
            degree(ei, 3, "both")

    def test_sort_by_target(self):
        ei = np.array([[5, 4, 3], [2, 0, 1]])
        assert list(sort_by_target(ei)[1]) == [0, 1, 2]


class TestKNN:
    def test_knn_graph_degrees(self, rng):
        pts = rng.normal(size=(30, 3))
        ei = knn_graph(pts, 5)
        assert ei.shape == (2, 150)
        np.testing.assert_array_equal(degree(ei, 30, "in"), 5)

    def test_knn_no_self_loops(self, rng):
        ei = knn_graph(rng.normal(size=(20, 3)), 4)
        assert not np.any(ei[0] == ei[1])

    def test_knn_neighbours_are_nearest(self, rng):
        pts = rng.normal(size=(15, 3))
        idx = knn_indices(pts, 3)
        dists = pairwise_sq_dists(pts, pts)
        for i in range(15):
            others = np.argsort(dists[i])
            nearest = [j for j in others if j != i][:3]
            assert set(idx[i]) == set(nearest)

    def test_knn_k_larger_than_cloud(self, rng):
        ei = knn_graph(rng.normal(size=(4, 3)), 10)
        assert ei.shape[1] == 4 * 3

    def test_knn_invalid(self, rng):
        with pytest.raises(ValueError):
            knn_graph(rng.normal(size=(5, 3)), 0)
        with pytest.raises(ValueError):
            knn_graph(np.zeros((0, 3)), 2)

    def test_radius_graph(self, rng):
        pts = np.array([[0.0, 0, 0], [0.1, 0, 0], [5.0, 0, 0]])
        ei = radius_graph(pts, radius=1.0)
        pairs = {tuple(c) for c in ei.T.tolist()}
        assert (0, 1) in pairs and (1, 0) in pairs
        assert not any(2 in p for p in pairs)

    def test_radius_graph_max_neighbors(self, rng):
        pts = rng.normal(size=(20, 3))
        ei = radius_graph(pts, radius=10.0, max_neighbors=3)
        assert degree(ei, 20, "in").max() <= 3

    def test_pairwise_dists_nonnegative(self, rng):
        a = rng.normal(size=(8, 3))
        d = pairwise_sq_dists(a, a)
        assert np.all(d >= 0)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)


class TestSampling:
    def test_random_graph_shape(self, rng):
        ei = random_graph(10, 3, rng)
        assert ei.shape == (2, 30)
        assert not np.any(ei[0] == ei[1])

    def test_random_graph_self_allowed(self, rng):
        ei = random_graph(5, 2, rng, include_self=True)
        assert ei.shape == (2, 10)

    def test_random_graph_invalid(self, rng):
        with pytest.raises(ValueError):
            random_graph(0, 2, rng)
        with pytest.raises(ValueError):
            random_graph(5, 0, rng)

    def test_fps_spread(self, rng):
        cluster_a = rng.normal(size=(20, 3)) * 0.01
        cluster_b = rng.normal(size=(20, 3)) * 0.01 + 10.0
        pts = np.concatenate([cluster_a, cluster_b])
        chosen = farthest_point_sampling(pts, 2, rng)
        assert (chosen[0] < 20) != (chosen[1] < 20)

    def test_fps_bounds(self, rng):
        with pytest.raises(ValueError):
            farthest_point_sampling(rng.normal(size=(5, 3)), 6, rng)

    def test_subsample_points(self, rng):
        pts = rng.normal(size=(10, 3))
        assert subsample_points(pts, 4, rng).shape == (4, 3)
        assert subsample_points(pts, 15, rng).shape == (15, 3)


class TestScatter:
    def test_scatter_sum_values(self):
        src = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = scatter_sum(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_scatter_mean_empty_segment(self):
        src = Tensor(np.array([[4.0], [2.0]]))
        out = scatter_mean(src, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [0.0], [0.0]])

    def test_scatter_max_min(self):
        src = Tensor(np.array([[1.0, -5.0], [3.0, 2.0], [0.0, 0.0]]))
        index = np.array([0, 0, 1])
        np.testing.assert_allclose(scatter_max(src, index, 2).data, [[3.0, 2.0], [0.0, 0.0]])
        np.testing.assert_allclose(scatter_min(src, index, 2).data, [[1.0, -5.0], [0.0, 0.0]])

    def test_scatter_dispatch_and_errors(self):
        src = Tensor(np.ones((2, 2)))
        with pytest.raises(ValueError):
            scatter(src, np.array([0, 1]), 2, reduce="median")
        with pytest.raises(ValueError):
            scatter_sum(src, np.array([0]), 2)
        with pytest.raises(ValueError):
            scatter_sum(src, np.array([0, 5]), 2)

    @pytest.mark.parametrize("reduce", ["sum", "mean", "max", "min"])
    def test_scatter_gradients(self, reduce, rng):
        src0 = rng.normal(size=(6, 3))
        index = np.array([0, 1, 1, 2, 2, 2])

        def numeric(x):
            return float(scatter(Tensor(x), index, 3, reduce).data.sum())

        src = Tensor(src0.copy(), requires_grad=True)
        scatter(src, index, 3, reduce).sum().backward()
        expected = finite_difference_grad(numeric, src0.copy())
        np.testing.assert_allclose(src.grad, expected, rtol=1e-5, atol=1e-7)


class TestMessages:
    @pytest.mark.parametrize(
        "message_type,expected_dim",
        [
            ("source_pos", 4),
            ("target_pos", 4),
            ("rel_pos", 4),
            ("distance", 1),
            ("source_rel", 8),
            ("target_rel", 8),
            ("full", 13),
        ],
    )
    def test_message_dims(self, message_type, expected_dim, rng):
        assert message_dim(message_type, 4) == expected_dim
        features = Tensor(rng.normal(size=(6, 4)))
        ei = np.array([[0, 1, 2], [3, 4, 5]])
        assert build_messages(features, ei, message_type).shape == (3, expected_dim)

    def test_message_values_target_rel(self, rng):
        features = Tensor(rng.normal(size=(4, 2)))
        ei = np.array([[2], [0]])
        msg = build_messages(features, ei, "target_rel").data
        np.testing.assert_allclose(msg[0, :2], features.data[0])
        np.testing.assert_allclose(msg[0, 2:], features.data[2] - features.data[0])

    def test_message_unknown_type(self, rng):
        with pytest.raises(ValueError):
            build_messages(Tensor(rng.normal(size=(3, 2))), np.array([[0], [1]]), "bogus")
        with pytest.raises(ValueError):
            message_dim("bogus", 3)

    def test_message_gradients(self, rng):
        x0 = rng.normal(size=(5, 3))
        ei = np.array([[0, 1, 4], [1, 2, 3]])

        def numeric(x):
            return float(build_messages(Tensor(x), ei, "full").data.sum())

        x = Tensor(x0.copy(), requires_grad=True)
        build_messages(x, ei, "full").sum().backward()
        np.testing.assert_allclose(x.grad, finite_difference_grad(numeric, x0.copy()), rtol=1e-5, atol=1e-7)


class TestAdjacency:
    def test_edges_to_dense(self):
        ei = np.array([[0, 1], [1, 2]])
        adj = edges_to_dense(ei, 3)
        assert adj[1, 0] == 1.0 and adj[2, 1] == 1.0 and adj.sum() == 2.0

    def test_gcn_normalize_rows(self):
        adj = edges_to_dense(np.array([[0, 1, 2], [1, 2, 0]]), 3, symmetric=True)
        norm = gcn_normalize(adj)
        assert norm.shape == (3, 3)
        assert np.all(norm >= 0)
        with pytest.raises(ValueError):
            gcn_normalize(np.ones((2, 3)))

    def test_sum_aggregation_matrix(self):
        adj = np.zeros((2, 2))
        np.testing.assert_allclose(sum_aggregation_matrix(adj), np.eye(2))


class TestBatching:
    def test_batched_knn_no_cross_edges(self, rng):
        pts = rng.normal(size=(20, 3))
        batch = np.repeat([0, 1], 10)
        ei = batched_knn_graph(pts, batch, 3)
        assert np.all(batch[ei[0]] == batch[ei[1]])

    def test_batched_random_no_cross_edges(self, rng):
        batch = np.repeat([0, 1, 2], 5)
        ei = batched_random_graph(batch, 2, rng)
        assert np.all(batch[ei[0]] == batch[ei[1]])

    def test_batch_vector_must_be_sorted(self, rng):
        with pytest.raises(ValueError):
            batched_knn_graph(rng.normal(size=(4, 3)), np.array([1, 0, 0, 1]), 2)

    def test_global_pools(self):
        x = Tensor(np.array([[1.0], [3.0], [10.0], [20.0]]))
        batch = np.array([0, 0, 1, 1])
        np.testing.assert_allclose(global_max_pool(x, batch, 2).data, [[3.0], [20.0]])
        np.testing.assert_allclose(global_mean_pool(x, batch, 2).data, [[2.0], [15.0]])
        np.testing.assert_allclose(global_sum_pool(x, batch, 2).data, [[4.0], [30.0]])


class TestPackUnpack:
    def test_empty_batch(self):
        points, batch = pack_clouds([])
        assert points.shape == (0, 3)
        assert batch.shape == (0,)
        assert unpack_clouds(points, batch) == []

    def test_batch_of_one(self, rng):
        cloud = rng.normal(size=(7, 3))
        points, batch = pack_clouds([cloud])
        assert points.shape == (7, 3)
        np.testing.assert_array_equal(batch, np.zeros(7, dtype=np.int64))
        (restored,) = unpack_clouds(points, batch)
        np.testing.assert_array_equal(restored, cloud)

    def test_ragged_round_trip_identity(self, rng):
        clouds = [rng.normal(size=(n, 3)) for n in (5, 1, 12, 3)]
        points, batch = pack_clouds(clouds)
        assert points.shape == (21, 3)
        np.testing.assert_array_equal(batch, np.repeat([0, 1, 2, 3], [5, 1, 12, 3]))
        restored = unpack_clouds(points, batch)
        assert len(restored) == len(clouds)
        for original, back in zip(clouds, restored):
            np.testing.assert_array_equal(back, original)

    def test_pack_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            pack_clouds([rng.normal(size=(4, 3)), rng.normal(size=(4, 2))])  # mixed dims
        with pytest.raises(ValueError):
            pack_clouds([np.zeros((0, 3))])  # empty cloud
        with pytest.raises(ValueError):
            pack_clouds([np.zeros(5)])  # not 2-D

    def test_unpack_respects_num_graphs(self, rng):
        clouds = [rng.normal(size=(4, 3)), rng.normal(size=(2, 3))]
        points, batch = pack_clouds(clouds)
        restored = unpack_clouds(points, batch, num_graphs=3)
        assert len(restored) == 3
        assert restored[2].shape == (0, 3)

    def test_pack_feeds_batched_knn(self, rng):
        clouds = [rng.normal(size=(6, 3)), rng.normal(size=(9, 3))]
        points, batch = pack_clouds(clouds)
        edge_index = batched_knn_graph(points, batch, 3)
        assert np.all(batch[edge_index[0]] == batch[edge_index[1]])


class TestScatterDtype:
    """Scatter outputs and gradients follow the message dtype (PR 5)."""

    @pytest.mark.parametrize("reduce", ["sum", "mean", "max", "min"])
    def test_scatter_preserves_float32(self, reduce, rng):
        src = Tensor(rng.normal(size=(6, 3)).astype(np.float32), requires_grad=True)
        index = np.array([0, 1, 1, 2, 2, 2])
        out = scatter(src, index, 4, reduce)
        assert out.dtype == np.float32
        out.sum().backward()
        assert src.grad.dtype == np.float32

    @pytest.mark.parametrize("reduce", ["sum", "mean", "max", "min"])
    def test_scatter_preserves_float64(self, reduce, rng):
        src = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        out = scatter(src, np.array([0, 0, 1, 1, 1]), 2, reduce)
        assert out.dtype == np.float64
        out.sum().backward()
        assert src.grad.dtype == np.float64

    def test_validated_fast_path_matches(self, rng):
        src = Tensor(rng.normal(size=(6, 3)).astype(np.float32))
        index = validate_index(np.array([0, 1, 1, 2, 2, 2]), 3)
        for reduce in ("sum", "mean", "max", "min"):
            checked = scatter(src, index, 3, reduce)
            fast = scatter(src, index, 3, reduce, validated=True)
            np.testing.assert_array_equal(checked.data, fast.data)

    def test_validate_index_errors(self):
        with pytest.raises(ValueError):
            validate_index(np.array([[0, 1]]), 2)
        with pytest.raises(ValueError):
            validate_index(np.array([0, 5]), 2)
        with pytest.raises(ValueError):
            validate_index(np.array([-1]), 2)
        with pytest.raises(ValueError):
            validate_index(np.array([0]), 0)

    def test_validated_still_checks_length(self):
        src = Tensor(np.ones((3, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            scatter_sum(src, np.array([0, 1]), 2, validated=True)


class TestFusedKernels:
    """Fused CSR/reduceat kernels match the materialized message path."""

    def _materialized(self, x, edge_index, mlp, message_type, aggregator):
        messages = build_messages(x, edge_index, message_type)
        transformed = mlp(messages) if mlp is not None else messages
        return scatter(transformed, edge_index[1], x.shape[0], aggregator)

    @pytest.mark.parametrize("message_type", FUSED_MESSAGE_TYPES)
    @pytest.mark.parametrize("aggregator", ["sum", "mean", "max", "min"])
    def test_forward_matches_materialized(self, message_type, aggregator, rng):
        with default_dtype("float64"):
            points = rng.normal(size=(40, 3))
            edge_index = knn_graph(points, 5)
            width = message_dim(message_type, 3)
            mlp = MLP([width, 8, 4], activation="leaky_relu", final_activation=True,
                      rng=np.random.default_rng(3))
            x = Tensor(points)
            expected = self._materialized(x, edge_index, mlp, message_type, aggregator)
            fused = fused_edgeconv(
                x, edge_index, mlp, message_type=message_type, aggregator=aggregator
            )
        assert fused.shape == expected.shape
        np.testing.assert_allclose(fused.data, expected.data, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("message_type", FUSED_MESSAGE_TYPES)
    @pytest.mark.parametrize("aggregator", ["sum", "mean", "max", "min"])
    def test_backward_matches_materialized(self, message_type, aggregator, rng):
        with default_dtype("float64"):
            points = rng.normal(size=(30, 3))
            edge_index = knn_graph(points, 4)
            width = message_dim(message_type, 3)
            mlp = MLP([width, 6, 4], activation="leaky_relu", final_activation=True,
                      rng=np.random.default_rng(5))
            x_ref = Tensor(points.copy(), requires_grad=True)
            self._materialized(x_ref, edge_index, mlp, message_type, aggregator).sum().backward()
            ref_grads = {name: p.grad.copy() for name, p in mlp.named_parameters()}
            mlp.zero_grad()
            x = Tensor(points.copy(), requires_grad=True)
            fused_edgeconv(
                x, edge_index, mlp, message_type=message_type, aggregator=aggregator,
                chunk_edges=13,  # force several segment-aligned chunks
            ).sum().backward()
        np.testing.assert_allclose(x.grad, x_ref.grad, rtol=1e-9, atol=1e-11)
        for name, param in mlp.named_parameters():
            assert param.grad.shape == param.data.shape
            np.testing.assert_allclose(param.grad, ref_grads[name], rtol=1e-9, atol=1e-11)
        mlp.zero_grad()

    def test_fused_aggregate_no_mlp(self, rng):
        points = rng.normal(size=(25, 3)).astype(np.float32)
        edge_index = knn_graph(points, 3)
        x = Tensor(points, requires_grad=True)
        out = fused_aggregate(x, edge_index, "rel_pos", "mean")
        expected = self._materialized(Tensor(points), edge_index, None, "rel_pos", "mean")
        assert out.dtype == np.float32
        np.testing.assert_allclose(out.data, expected.data, rtol=1e-5, atol=1e-6)
        out.sum().backward()
        assert x.grad.dtype == np.float32 and x.grad.shape == points.shape

    def test_unsorted_edges(self, rng):
        points = rng.normal(size=(20, 3)).astype(np.float32)
        edge_index = knn_graph(points, 4)
        shuffled = edge_index[:, rng.permutation(edge_index.shape[1])]
        a = fused_aggregate(Tensor(points), shuffled, "target_rel", "max")
        b = self._materialized(Tensor(points), shuffled, None, "target_rel", "max")
        np.testing.assert_allclose(a.data, b.data, rtol=1e-5, atol=1e-6)

    def test_ragged_degrees(self, rng):
        # Non-uniform segment sizes exercise the reduceat (non-reshape) path,
        # including nodes with no incoming edges at the start/middle/end.
        sources = np.array([1, 2, 3, 0, 0, 4, 4, 4, 4])
        targets = np.array([1, 1, 1, 2, 4, 4, 4, 4, 4])
        edge_index = np.stack([sources, targets])
        points = rng.normal(size=(6, 3)).astype(np.float32)
        for aggregator in ("sum", "mean", "max", "min"):
            fused = fused_aggregate(Tensor(points), edge_index, "rel_pos", aggregator)
            expected = self._materialized(Tensor(points), edge_index, None, "rel_pos", aggregator)
            np.testing.assert_allclose(fused.data, expected.data, rtol=1e-5, atol=1e-6)

    def test_empty_edge_index(self):
        x = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        out = fused_aggregate(x, np.zeros((2, 0), dtype=np.int64), "rel_pos", "sum")
        assert out.shape == (4, 3)
        np.testing.assert_array_equal(out.data, 0.0)

    def test_unsupported_inputs(self):
        x = Tensor(np.ones((4, 3), dtype=np.float32))
        edge_index = np.array([[0, 1], [1, 0]])
        with pytest.raises(ValueError):
            fused_edgeconv(x, edge_index, None, message_type="full", aggregator="sum")
        with pytest.raises(ValueError):
            fused_edgeconv(x, edge_index, None, message_type="rel_pos", aggregator="median")
        bn_mlp = Sequential(Linear(3, 3), BatchNorm1d(3))
        assert linearize_mlp(bn_mlp) is None
        assert not supports_fused("rel_pos", bn_mlp)
        with pytest.raises(ValueError):
            fused_edgeconv(x, edge_index, bn_mlp, message_type="rel_pos", aggregator="sum")

    def test_linearize_mlp_dropout(self):
        dropout_mlp = MLP([3, 4], activation="relu", final_activation=True, dropout=0.5,
                          rng=np.random.default_rng(0))
        dropout_mlp.train()
        assert linearize_mlp(dropout_mlp) is None
        dropout_mlp.eval()
        assert linearize_mlp(dropout_mlp) is not None

    def test_edgeconv_dispatches_in_no_grad(self, rng):
        conv = EdgeConv(3, 8, aggregator="max", message_type="target_rel",
                        rng=np.random.default_rng(2)).eval()
        points = rng.normal(size=(30, 3)).astype(np.float32)
        edge_index = knn_graph(points, 5)
        with no_grad():
            fused = conv(Tensor(points), edge_index)
            with use_fused_kernels(False):
                materialized = conv(Tensor(points), edge_index)
        assert fused.dtype == np.float32
        np.testing.assert_allclose(fused.data, materialized.data, rtol=1e-5, atol=1e-6)
        # Grad-enabled forwards keep the materialized path's exact floats.
        trained = conv(Tensor(points), edge_index)
        np.testing.assert_array_equal(trained.data, materialized.data)

    def test_fused_validates_edge_index(self):
        x = Tensor(np.ones((4, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            fused_aggregate(x, np.array([[0, 9], [1, 0]]), "rel_pos", "sum")
        with pytest.raises(ValueError):
            fused_aggregate(x, np.array([[0, -1], [1, 0]]), "rel_pos", "sum")
