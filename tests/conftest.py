"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_modelnet import make_synthetic_modelnet


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny train/test dataset pair shared by the slower tests."""
    return make_synthetic_modelnet(num_classes=4, samples_per_class=5, num_points=24, seed=0)


@pytest.fixture(scope="session")
def tiny_train(tiny_dataset):
    return tiny_dataset[0]


@pytest.fixture(scope="session")
def tiny_test(tiny_dataset):
    return tiny_dataset[1]
