"""Tests for the hardware substrate: workloads, cost model, devices, latency,
memory, profiling, measurement and power."""

import numpy as np
import pytest

from repro.hardware import (
    PAPER_TARGETS,
    DeviceMeasurement,
    OpDescriptor,
    all_devices,
    calibrate_coefficients,
    dgcnn_workload,
    estimate_energy,
    estimate_latency,
    estimate_peak_memory,
    get_device,
    graph_reuse_dgcnn_workload,
    is_out_of_memory,
    list_devices,
    lower_op,
    lower_workload,
    power_efficiency_ratio,
    profile_breakdown,
    profile_workload,
    simplified_dgcnn_workload,
)
from repro.utils.timer import VirtualClock


class TestWorkload:
    def test_op_descriptor_validation(self):
        with pytest.raises(ValueError):
            OpDescriptor(kind="conv", num_points=10)
        with pytest.raises(ValueError):
            OpDescriptor(kind="combine", num_points=0)
        with pytest.raises(ValueError):
            OpDescriptor(kind="combine", num_points=10, in_dim=-1)

    def test_workload_counting(self):
        wl = dgcnn_workload(256)
        assert wl.count("knn_sample") == 4
        assert wl.count("aggregate") == 4
        assert len(wl.by_category()["combine"]) == 6  # 4 edge MLPs + embedding + classifier

    def test_categories(self):
        assert OpDescriptor(kind="knn_sample", num_points=8).category == "sample"
        assert OpDescriptor(kind="classifier", num_points=8).category == "combine"
        assert OpDescriptor(kind="pooling", num_points=8).category == "others"


class TestCostModel:
    def test_knn_scales_quadratically(self):
        small = lower_op(OpDescriptor(kind="knn_sample", num_points=100, num_edges=1000, in_dim=3))
        large = lower_op(OpDescriptor(kind="knn_sample", num_points=200, num_edges=2000, in_dim=3))
        assert large.knn_pair_dims == pytest.approx(4 * small.knn_pair_dims)

    def test_random_sample_much_cheaper_than_knn(self):
        knn = lower_op(OpDescriptor(kind="knn_sample", num_points=1024, num_edges=20480, in_dim=64))
        rnd = lower_op(OpDescriptor(kind="random_sample", num_points=1024, num_edges=20480, in_dim=64))
        assert rnd.knn_pair_dims == 0
        assert rnd.irregular_bytes < knn.knn_pair_dims

    def test_aggregate_traffic_scales_with_message(self):
        narrow = lower_op(OpDescriptor(kind="aggregate", num_points=100, num_edges=1000, in_dim=8, out_dim=8, message_dim=8))
        wide = lower_op(OpDescriptor(kind="aggregate", num_points=100, num_edges=1000, in_dim=8, out_dim=16, message_dim=16))
        assert wide.irregular_bytes > narrow.irregular_bytes

    def test_combine_flops(self):
        q = lower_op(OpDescriptor(kind="combine", num_points=10, in_dim=4, out_dim=8))
        assert q.flops == pytest.approx(2 * 10 * 4 * 8)

    def test_workload_totals(self):
        totals = lower_workload(dgcnn_workload(1024)).total_by_category("flops")
        assert totals["combine"] > totals["aggregate"] > 0


class TestDevicesAndCalibration:
    def test_registry(self):
        assert set(list_devices()) == {"rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi"}
        assert len(all_devices()) == 4
        assert get_device("GPU").name == "rtx3080"
        assert get_device("pi").name == "raspberry-pi"
        with pytest.raises(KeyError):
            get_device("tpu")

    def test_coefficients_positive(self):
        for target in PAPER_TARGETS.values():
            coefficients = calibrate_coefficients(target)
            assert all(value > 0 for value in coefficients.values())

    @pytest.mark.parametrize("name", ["rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi"])
    def test_dgcnn_latency_matches_paper(self, name):
        device = get_device(name)
        latency = estimate_latency(dgcnn_workload(1024), device).total_ms
        assert latency == pytest.approx(PAPER_TARGETS[name].dgcnn_latency_ms, rel=0.02)

    @pytest.mark.parametrize("name", ["rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi"])
    def test_dgcnn_memory_matches_paper(self, name):
        device = get_device(name)
        memory = estimate_peak_memory(dgcnn_workload(1024), device).peak_mb
        assert memory == pytest.approx(PAPER_TARGETS[name].dgcnn_peak_memory_mb, rel=0.02)

    @pytest.mark.parametrize("name", ["rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi"])
    def test_breakdown_matches_paper(self, name):
        device = get_device(name)
        fractions = estimate_latency(dgcnn_workload(1024), device).category_fractions()
        for category, expected in PAPER_TARGETS[name].breakdown.items():
            assert fractions[category] == pytest.approx(expected, abs=0.02)

    def test_device_overrides(self):
        device = get_device("rtx3080").with_overrides(power_watts=100.0)
        assert device.power_watts == 100.0
        with pytest.raises(ValueError):
            get_device("rtx3080").with_overrides(power_watts=-1.0)


class TestLatencyModel:
    def test_latency_increases_with_points(self):
        device = get_device("jetson-tx2")
        latencies = [estimate_latency(dgcnn_workload(n), device).total_ms for n in (128, 512, 1024)]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_baselines_are_faster_than_dgcnn(self):
        for device in all_devices():
            base = estimate_latency(dgcnn_workload(1024), device).total_ms
            for workload in (graph_reuse_dgcnn_workload(1024), simplified_dgcnn_workload(1024)):
                faster = estimate_latency(workload, device).total_ms
                assert 1.0 < base / faster < 5.0

    def test_fractions_sum_to_one(self):
        report = estimate_latency(dgcnn_workload(512), get_device("pi"))
        assert sum(report.category_fractions().values()) == pytest.approx(1.0)

    def test_report_total_consistency(self):
        report = estimate_latency(dgcnn_workload(256), get_device("cpu"))
        assert report.total_ms == pytest.approx(sum(op.total_ms for op in report.ops))
        assert report.total_s == pytest.approx(report.total_ms / 1000.0)


class TestMemoryModel:
    def test_pi_oom_beyond_1024_points(self):
        pi = get_device("raspberry-pi")
        assert not is_out_of_memory(dgcnn_workload(1024), pi)
        assert is_out_of_memory(dgcnn_workload(1536), pi)
        assert is_out_of_memory(dgcnn_workload(2048), pi)

    def test_other_devices_do_not_oom(self):
        for name in ("rtx3080", "i7-8700k", "jetson-tx2"):
            assert not is_out_of_memory(dgcnn_workload(2048), get_device(name))

    def test_memory_report_fields(self):
        report = estimate_peak_memory(dgcnn_workload(512), get_device("pi"))
        assert report.peak_mb == pytest.approx(report.base_mb + report.activation_mb)
        assert 0 < report.utilisation


class TestProfiler:
    def test_dominant_categories_match_paper_story(self):
        workload = dgcnn_workload(1024)
        profiles = profile_breakdown(workload, all_devices())
        assert profiles["rtx3080"].dominant_category() == "sample"
        assert profiles["jetson-tx2"].dominant_category() == "sample"
        assert profiles["i7-8700k"].dominant_category() == "aggregate"
        pi = profiles["raspberry-pi"].category_fractions
        assert min(pi["sample"], pi["aggregate"], pi["combine"]) > 0.15

    def test_profile_result_fields(self):
        profile = profile_workload(dgcnn_workload(256), get_device("gpu"))
        assert profile.total_latency_ms > 0
        assert not profile.out_of_memory


class TestMeasurementAndPower:
    def test_measurement_noise_and_clock(self):
        device = get_device("raspberry-pi")
        clock = VirtualClock()
        meas = DeviceMeasurement(device=device, rng=np.random.default_rng(0), clock=clock)
        workload = dgcnn_workload(512)
        samples = [meas.measure(workload) for _ in range(5)]
        true = estimate_latency(workload, device).total_ms
        latencies = np.array([s.latency_ms for s in samples])
        assert clock.now == pytest.approx(5 * device.measurement_round_trip_s)
        assert np.std(latencies) > 0
        assert np.all(np.abs(latencies / true - 1.0) < 0.5)

    def test_measurement_invalid_runs(self):
        with pytest.raises(ValueError):
            DeviceMeasurement(device=get_device("gpu"), num_runs=0)

    def test_energy_and_power_ratio(self):
        rtx, tx2 = get_device("rtx3080"), get_device("jetson-tx2")
        workload = dgcnn_workload(1024)
        energy = estimate_energy(workload, rtx)
        assert energy.energy_mj == pytest.approx(energy.latency_ms * 350.0)
        assert power_efficiency_ratio(workload, tx2, workload, rtx) == pytest.approx(350.0 / 7.5)
