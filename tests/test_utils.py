"""Tests for repro.utils (random, serialization, timer, logging)."""

import logging
import time

import numpy as np
import pytest

from repro.utils import (
    Timer,
    VirtualClock,
    get_logger,
    load_json,
    load_npz,
    new_rng,
    save_json,
    save_npz,
    seed_everything,
    split_rng,
)
from repro.utils.logging import set_verbosity
from repro.utils.serialization import to_jsonable


class TestRandom:
    def test_new_rng_deterministic(self):
        a = new_rng(7).random(5)
        b = new_rng(7).random(5)
        np.testing.assert_allclose(a, b)

    def test_new_rng_different_seeds_differ(self):
        assert not np.allclose(new_rng(1).random(5), new_rng(2).random(5))

    def test_split_rng_count_and_independence(self):
        children = split_rng(new_rng(0), 3)
        assert len(children) == 3
        draws = [c.random(4) for c in children]
        assert not np.allclose(draws[0], draws[1])

    def test_split_rng_zero(self):
        assert split_rng(new_rng(0), 0) == []

    def test_split_rng_negative_raises(self):
        with pytest.raises(ValueError):
            split_rng(new_rng(0), -1)

    def test_seed_everything_returns_generator(self):
        rng = seed_everything(123)
        assert isinstance(rng, np.random.Generator)

    def test_seed_everything_reproducible(self):
        a = seed_everything(5).random(3)
        b = seed_everything(5).random(3)
        np.testing.assert_allclose(a, b)


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        payload = {"a": 1, "b": [1.5, 2.5], "c": {"nested": True}}
        path = save_json(tmp_path / "sub" / "data.json", payload)
        assert load_json(path) == payload

    def test_to_jsonable_numpy(self):
        out = to_jsonable({"x": np.float64(1.5), "y": np.int64(2), "z": np.array([1, 2])})
        assert out == {"x": 1.5, "y": 2, "z": [1, 2]}

    def test_to_jsonable_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_npz_roundtrip(self, tmp_path):
        arrays = {"a": np.arange(5), "b": np.ones((2, 2))}
        path = save_npz(tmp_path / "arrays.npz", arrays)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])


class TestTimer:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer:
            pass
        assert timer.elapsed >= 0.0

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timer_restart_banks_inflight_interval(self):
        # start() on a running timer must not silently discard the interval
        # measured so far: it accumulates into elapsed and restarts.
        timer = Timer()
        timer.start()
        time.sleep(0.01)
        timer.start()
        banked = timer.elapsed
        assert banked >= 0.01
        timer.stop()
        assert timer.elapsed >= banked
        # The timer is stopped: a fresh start() must not bank anything more.
        before = timer.elapsed
        timer.start()
        assert timer.elapsed == before
        timer.stop()

    def test_timer_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0

    def test_virtual_clock_advances(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_virtual_clock_reset(self):
        clock = VirtualClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now == 0.0


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("nas.search")
        assert logger.name == "repro.nas.search"

    def test_get_logger_idempotent_handlers(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

    def test_set_verbosity(self):
        set_verbosity("INFO")
        assert logging.getLogger("repro").level == logging.INFO
        set_verbosity(logging.WARNING)
