"""Tests for the experiment drivers (every figure/table of the paper)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    format_table,
    frontier_from_table,
    load_benchmark_dataset,
    resolve_devices,
    run_device_comparison,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig9b,
    run_fig10,
    run_point_sweep,
    run_table2,
)

TINY_SCALE = ExperimentScale(num_classes=4, samples_per_class=3, num_points=24, train_epochs=1, batch_size=4)


class TestCommon:
    def test_resolve_devices(self):
        assert len(resolve_devices()) == 4
        assert resolve_devices(["gpu"])[0].name == "rtx3080"

    def test_load_dataset(self):
        train, test = load_benchmark_dataset(TINY_SCALE)
        assert len(train) == 12 and len(test) == 12

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        assert "a" in text and "0.125" in text
        assert format_table([]) == "(no rows)"

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(num_classes=1)


class TestFig1:
    def test_point_sweep_shows_oom_on_pi(self):
        rows = run_point_sweep("raspberry-pi", (512, 1024, 2048))
        dgcnn = {r.num_points: r for r in rows if r.model == "DGCNN"}
        assert not dgcnn[1024].out_of_memory
        assert dgcnn[2048].out_of_memory
        assert dgcnn[512].latency_ms < dgcnn[1024].latency_ms

    def test_hgnas_always_faster(self):
        rows = run_point_sweep("raspberry-pi", (1024,))
        latency = {r.model: r.latency_ms for r in rows}
        assert latency["HGNAS"] < latency["DGCNN"]

    def test_device_comparison_speedups(self):
        rows = run_device_comparison()
        assert len(rows) == 4
        for row in rows:
            assert row["speedup"] > 2.0
            assert 0.0 < row["memory_reduction"] < 1.0

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            run_point_sweep("pi", (0,))


class TestFig2:
    def test_reuse_reduces_latency(self):
        results = run_fig2(TINY_SCALE)
        by_name = {r.name: r for r in results}
        assert by_name["rebuild-1"].latency_ms < by_name["rebuild-all (DGCNN)"].latency_ms
        assert all(0.0 <= r.accuracy <= 1.0 for r in results)
        assert by_name["rebuild-1"].knn_constructions < by_name["rebuild-all (DGCNN)"].knn_constructions


class TestFig3:
    def test_breakdown_matches_paper_story(self):
        rows = {r["device"]: r for r in run_fig3()}
        assert rows["rtx3080"]["dominant_category"] == "sample"
        assert rows["i7-8700k"]["dominant_category"] == "aggregate"
        for row in rows.values():
            total = sum(row[f"{c}_fraction"] for c in ("sample", "aggregate", "combine", "others"))
            assert total == pytest.approx(1.0)
            assert row["max_abs_error_vs_paper"] < 0.05


class TestFig6AndTable2:
    @pytest.fixture(scope="class")
    def table_rows(self):
        return run_table2(TINY_SCALE, devices=["rtx3080", "raspberry-pi"])

    def test_table_contents(self, table_rows):
        networks = {row.network for row in table_rows}
        assert networks == {"DGCNN", "[6] graph-reuse", "[7] simplified", "HGNAS-Acc", "HGNAS-Fast"}
        assert len(table_rows) == 10

    def test_hgnas_fast_is_fastest(self, table_rows):
        for device in {row.device for row in table_rows}:
            rows = {r.network: r for r in table_rows if r.device == device}
            assert rows["HGNAS-Fast"].speedup_vs_dgcnn > rows["[6] graph-reuse"].speedup_vs_dgcnn
            assert rows["HGNAS-Fast"].speedup_vs_dgcnn > rows["[7] simplified"].speedup_vs_dgcnn
            assert rows["HGNAS-Fast"].speedup_vs_dgcnn > 2.0
            assert rows["DGCNN"].speedup_vs_dgcnn == pytest.approx(1.0)

    def test_memory_reduction_positive(self, table_rows):
        for row in table_rows:
            if row.network.startswith("HGNAS"):
                assert row.memory_reduction_vs_dgcnn > 0.0

    def test_frontier_reshape(self, table_rows):
        frontier = frontier_from_table(table_rows)
        assert len(frontier) == 2
        for points in frontier.values():
            assert len(points) == 5
            hgnas_points = [p for p in points if p.is_hgnas]
            assert len(hgnas_points) == 2

    def test_run_fig6_wrapper(self, table_rows):
        frontier = run_fig6(TINY_SCALE, devices=["rtx3080"])
        assert len(frontier) == 1


class TestFig7:
    def test_tradeoff_speedup_direction(self):
        points = run_fig7(ratios=(0.1, 10.0), scale=TINY_SCALE)
        assert len(points) == 2
        # A latency-heavy objective (small alpha:beta) should never yield a
        # slower design than an accuracy-heavy one.
        assert points[0].speedup_vs_dgcnn >= points[1].speedup_vs_dgcnn * 0.5
        for point in points:
            assert point.latency_ms > 0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            run_fig7(ratios=(0.0,), scale=TINY_SCALE)


class TestFig9b:
    def test_both_strategies_produce_history(self):
        runs = run_fig9b(scale=TINY_SCALE)
        labels = {run.label for run in runs}
        assert labels == {"multi-stage", "one-stage"}
        for run in runs:
            assert len(run.history) > 0
            assert run.search_time_s > 0


class TestFig10:
    def test_reports_per_device(self):
        reports = run_fig10()
        assert len(reports) == 4
        by_device = {r.device: r for r in reports}
        # GPU-oriented designs contain at most as many KNN ops as the Pi design.
        assert by_device["rtx3080"].num_samples <= by_device["raspberry-pi"].num_samples + 1
        for report in reports:
            assert "Classifier" in report.rendering
            assert report.speedup_vs_dgcnn > 1.0
