"""Tests for the NAS core: ops, architecture genotype, design space, presets,
objective, evolution and visualisation."""

import numpy as np
import pytest

from repro.hardware import estimate_latency, get_device
from repro.nas import (
    AGGREGATOR_TYPES,
    COMBINE_DIMS,
    Architecture,
    DesignSpace,
    DesignSpaceConfig,
    EvolutionConfig,
    EvolutionarySearch,
    FunctionSet,
    ObjectiveConfig,
    OperationType,
    architecture_summary,
    architecture_to_networkx,
    device_acc_architecture,
    device_fast_architecture,
    dgcnn_architecture,
    function_space_size,
    hardware_constrained_score,
    mutate_function_set,
    objective_score,
    pi_fast_architecture,
    random_function_set,
    render_architecture,
    rtx_fast_architecture,
)
from repro.nas.ops import MESSAGE_TYPES, SAMPLE_METHODS


class TestOps:
    def test_table1_candidates(self):
        assert set(AGGREGATOR_TYPES) == {"sum", "min", "max", "mean"}
        assert COMBINE_DIMS == (8, 16, 32, 64, 128, 256)
        assert len(MESSAGE_TYPES) == 7
        assert set(SAMPLE_METHODS) == {"knn", "random"}
        assert len(OperationType.list()) == 4

    def test_function_set_validation(self):
        with pytest.raises(ValueError):
            FunctionSet(aggregator="median")
        with pytest.raises(ValueError):
            FunctionSet(combine_dim=100)
        with pytest.raises(ValueError):
            FunctionSet(sample_method="fps")

    def test_function_set_roundtrip_and_replace(self):
        functions = FunctionSet(aggregator="sum", combine_dim=16)
        assert FunctionSet.from_dict(functions.to_dict()) == functions
        assert functions.replace(combine_dim=32).combine_dim == 32

    def test_function_space_size(self):
        assert function_space_size() == 4 * 7 * 6 * 2 * 2

    def test_random_and_mutate_function_set(self, rng):
        functions = random_function_set(rng)
        mutated = mutate_function_set(functions, rng)
        assert mutated != functions
        with pytest.raises(ValueError):
            mutate_function_set(functions, rng, num_mutations=0)


class TestArchitecture:
    def test_dgcnn_preset_covers_backbone(self):
        arch = dgcnn_architecture(12)
        assert arch.num_positions == 12
        assert arch.num_valid_samples() == 4
        ops = arch.effective_ops()
        kinds = [op.kind for op in ops]
        assert kinds.count("aggregate") == 4
        assert kinds.count("combine") == 4

    def test_adjacent_samples_merge(self):
        arch = Architecture(
            operations=(OperationType.SAMPLE, OperationType.SAMPLE, OperationType.AGGREGATE, OperationType.COMBINE),
        )
        assert arch.num_valid_samples() == 1

    def test_trailing_sample_dropped(self):
        arch = Architecture(operations=(OperationType.AGGREGATE, OperationType.SAMPLE))
        kinds = [op.kind for op in arch.effective_ops()]
        assert kinds == ["sample", "aggregate"]

    def test_implicit_sample_before_aggregate(self):
        arch = Architecture(operations=(OperationType.AGGREGATE,))
        kinds = [op.kind for op in arch.effective_ops()]
        assert kinds == ["sample", "aggregate"]

    def test_skip_connect_grows_dim(self):
        functions = FunctionSet(connect_mode="skip", combine_dim=8)
        arch = Architecture(
            operations=(OperationType.COMBINE, OperationType.CONNECT),
            upper_functions=functions,
            lower_functions=functions,
        )
        assert arch.output_dim() == 8 + 3

    def test_identity_connect_is_noop(self):
        functions = FunctionSet(connect_mode="identity")
        arch = Architecture(
            operations=(OperationType.CONNECT, OperationType.CONNECT),
            upper_functions=functions,
            lower_functions=functions,
        )
        assert arch.effective_ops() == []
        assert arch.output_dim() == 3

    def test_functions_at_halves(self):
        upper = FunctionSet(combine_dim=16)
        lower = FunctionSet(combine_dim=128)
        arch = Architecture(operations=(OperationType.COMBINE,) * 4, upper_functions=upper, lower_functions=lower)
        assert arch.functions_at(0).combine_dim == 16
        assert arch.functions_at(3).combine_dim == 128
        with pytest.raises(IndexError):
            arch.functions_at(4)

    def test_to_workload_and_latency(self):
        arch = dgcnn_architecture()
        workload = arch.to_workload(512, 10, 40)
        assert workload.num_points == 512
        assert workload.count("knn_sample") == 4
        latency = estimate_latency(workload, get_device("gpu")).total_ms
        assert latency > 0

    def test_to_workload_validation(self):
        with pytest.raises(ValueError):
            dgcnn_architecture().to_workload(0, 10, 40)

    def test_serialisation_roundtrip(self):
        arch = rtx_fast_architecture()
        clone = Architecture.from_dict(arch.to_dict())
        assert clone.key() == arch.key()

    def test_random_architecture(self, rng):
        arch = Architecture.random(8, rng)
        assert arch.num_positions == 8
        assert all(op in OperationType.list() for op in arch.operations)

    def test_empty_architecture_rejected(self):
        with pytest.raises(ValueError):
            Architecture(operations=())


class TestPresets:
    @pytest.mark.parametrize("device", ["rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi"])
    def test_fast_presets_beat_dgcnn(self, device):
        spec = get_device(device)
        dgcnn_latency = estimate_latency(dgcnn_architecture().to_workload(1024, 20, 40), spec).total_ms
        fast_latency = estimate_latency(
            device_fast_architecture(device).to_workload(1024, 20, 40), spec
        ).total_ms
        assert dgcnn_latency / fast_latency > 2.0

    @pytest.mark.parametrize("device", ["rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi"])
    def test_acc_presets_slower_than_fast(self, device):
        spec = get_device(device)
        fast = estimate_latency(device_fast_architecture(device).to_workload(1024, 20, 40), spec).total_ms
        acc = estimate_latency(device_acc_architecture(device).to_workload(1024, 20, 40), spec).total_ms
        assert acc >= fast

    def test_gpu_designs_have_few_knn(self):
        assert rtx_fast_architecture().num_valid_samples() <= 2
        assert pi_fast_architecture().upper_functions.message_type == "source_pos"

    def test_unknown_device_preset(self):
        with pytest.raises(KeyError):
            device_fast_architecture("tpu")

    def test_dgcnn_preset_minimum_positions(self):
        with pytest.raises(ValueError):
            dgcnn_architecture(4)


class TestDesignSpace:
    def test_space_sizes(self):
        space = DesignSpace(DesignSpaceConfig(num_positions=12))
        assert space.operation_space_size() == 4**12
        assert space.function_space_size(shared=True) == function_space_size() ** 2
        assert space.function_space_size(shared=False) == function_space_size() ** 12
        assert space.total_size() == space.operation_space_size() * space.function_space_size()

    def test_sharing_reduces_space(self):
        space = DesignSpace(DesignSpaceConfig(num_positions=12))
        assert space.total_size(True) < space.total_size(False)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DesignSpaceConfig(num_positions=7)
        with pytest.raises(ValueError):
            DesignSpaceConfig(num_classes=1)

    def test_random_architecture_positions(self, rng):
        space = DesignSpace(DesignSpaceConfig(num_positions=8))
        arch = space.random_architecture(rng)
        assert arch.num_positions == 8

    def test_mutation_changes_one_position(self, rng):
        space = DesignSpace(DesignSpaceConfig(num_positions=8))
        arch = space.random_architecture(rng)
        mutated = space.mutate_operations(arch, rng, 1)
        diffs = sum(a is not b for a, b in zip(arch.operations, mutated.operations))
        assert diffs == 1

    def test_mutate_functions_changes_a_half(self, rng):
        space = DesignSpace(DesignSpaceConfig(num_positions=8))
        arch = space.random_architecture(rng)
        mutated = space.mutate_functions(arch, rng)
        assert (mutated.upper_functions != arch.upper_functions) or (
            mutated.lower_functions != arch.lower_functions
        )

    def test_crossover_mixes_parents(self, rng):
        space = DesignSpace(DesignSpaceConfig(num_positions=8))
        a = space.random_architecture(rng)
        b = space.random_architecture(rng)
        child = space.crossover_operations(a, b, rng)
        for i, op in enumerate(child.operations):
            assert op is a.operations[i] or op is b.operations[i]

    def test_crossover_length_mismatch(self, rng):
        space = DesignSpace(DesignSpaceConfig(num_positions=8))
        a = space.random_architecture(rng)
        b = Architecture.random(6, rng)
        with pytest.raises(ValueError):
            space.crossover_operations(a, b, rng)


class TestObjective:
    def test_constraint_zeroes_score(self):
        config = ObjectiveConfig(alpha=1.0, beta=1.0, latency_constraint_ms=10.0, latency_scale_ms=10.0)
        assert hardware_constrained_score(0.9, 15.0, config) == 0.0
        assert hardware_constrained_score(0.9, 5.0, config) == pytest.approx(0.9 - 0.5)

    def test_alpha_beta_tradeoff(self):
        fast_config = ObjectiveConfig(alpha=0.1, beta=1.0, latency_scale_ms=100.0)
        acc_config = ObjectiveConfig(alpha=10.0, beta=1.0, latency_scale_ms=100.0)
        accurate_slow = (0.95, 80.0)
        rough_fast = (0.80, 10.0)
        assert objective_score(*rough_fast, fast_config) > objective_score(*accurate_slow, fast_config)
        assert objective_score(*accurate_slow, acc_config) > objective_score(*rough_fast, acc_config)

    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectiveConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            ObjectiveConfig(alpha=0.0, beta=0.0)
        with pytest.raises(ValueError):
            objective_score(1.5, 10.0, ObjectiveConfig())
        with pytest.raises(ValueError):
            objective_score(0.5, -1.0, ObjectiveConfig())

    def test_ratio(self):
        assert ObjectiveConfig(alpha=2.0, beta=0.5).alpha_beta_ratio == pytest.approx(4.0)


class TestEvolution:
    def test_maximises_simple_function(self, rng):
        target = 42

        def initialize(r):
            return int(r.integers(0, 100))

        def mutate(x, r, n):
            return int(np.clip(x + r.integers(-5, 6), 0, 100))

        search = EvolutionarySearch(
            EvolutionConfig(population_size=10),
            initialize=initialize,
            mutate=mutate,
            evaluate=lambda x: -abs(x - target),
            rng=rng,
        )
        result = search.run(30)
        assert abs(result.best - target) <= 2
        assert result.best_score == pytest.approx(-abs(result.best - target))

    def test_history_monotone_and_clock(self, rng):
        search = EvolutionarySearch(
            EvolutionConfig(population_size=6),
            initialize=lambda r: float(r.random()),
            mutate=lambda x, r, n: float(np.clip(x + r.normal(0, 0.1), 0, 1)),
            evaluate=lambda x: x,
            rng=rng,
            evaluation_cost_s=2.0,
        )
        result = search.run(5)
        scores = [point.best_score for point in result.history]
        assert scores == sorted(scores)
        assert result.history[-1].clock_s == pytest.approx(2.0 * result.evaluations)

    def test_cache_avoids_reevaluation(self, rng):
        calls = []

        def evaluate(x):
            calls.append(x)
            return float(x)

        search = EvolutionarySearch(
            EvolutionConfig(population_size=6),
            initialize=lambda r: int(r.integers(0, 3)),
            mutate=lambda x, r, n: int((x + 1) % 3),
            evaluate=evaluate,
            rng=rng,
        )
        search.run(10)
        assert len(calls) <= 3

    def test_invalid_configs(self, rng):
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=1)
        with pytest.raises(ValueError):
            EvolutionConfig(parent_fraction=0.0)
        search = EvolutionarySearch(
            EvolutionConfig(population_size=4),
            initialize=lambda r: 0,
            mutate=lambda x, r, n: x,
            evaluate=lambda x: 0.0,
            rng=rng,
        )
        with pytest.raises(ValueError):
            search.run(0)


class TestVisualisation:
    def test_render_contains_ops_and_classifier(self):
        text = render_architecture(rtx_fast_architecture())
        assert "KNN" in text
        assert "Classifier" in text

    def test_summary_counts(self):
        summary = architecture_summary(dgcnn_architecture())
        assert summary["num_samples"] == 4
        assert summary["num_aggregates"] == 4
        assert summary["ops"][-1] == "Classifier"

    def test_networkx_chain(self):
        graph = architecture_to_networkx(dgcnn_architecture())
        assert graph.has_node("input") and graph.has_node("output")
        assert graph.number_of_edges() == graph.number_of_nodes() - 1
