"""Tests for nn layers, losses, optimisers, schedulers and functional ops."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adam,
    AdamW,
    BatchNorm1d,
    CosineAnnealingLR,
    Dropout,
    ExponentialLR,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    StepLR,
    Tensor,
    WarmupCosineLR,
    accuracy,
    balanced_accuracy,
    clip_grad_norm,
    cross_entropy,
    huber_loss,
    mae_loss,
    mape_loss,
    mse_loss,
    nll_loss,
)
from repro.nn import functional as F
from repro.nn import init


class TestLinearAndMLP:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_mlp_structure(self, rng):
        mlp = MLP([4, 8, 2], dropout=0.1, batch_norm=True, rng=rng)
        out = mlp(Tensor(rng.normal(size=(6, 4))))
        assert out.shape == (6, 2)

    def test_mlp_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_invalid_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], activation="gelu")

    def test_sequential_indexing(self, rng):
        seq = Sequential(Linear(2, 3, rng=rng), ReLU(), Identity())
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert seq(Tensor(rng.normal(size=(4, 2)))).shape == (4, 3)


class TestModuleProtocol:
    def test_parameters_and_count(self, rng):
        mlp = MLP([3, 5, 2], rng=rng)
        count = sum(p.size for p in mlp.parameters())
        assert mlp.num_parameters() == count == 3 * 5 + 5 + 5 * 2 + 2

    def test_state_dict_roundtrip(self, rng):
        a = MLP([3, 4, 2], rng=np.random.default_rng(1))
        b = MLP([3, 4, 2], rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_strict_mismatch(self, rng):
        a = MLP([3, 4, 2], rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"bogus": np.ones(2)})

    def test_state_dict_shape_mismatch(self, rng):
        a = MLP([3, 4, 2], rng=rng)
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.ones((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_train_eval_recursion(self, rng):
        mlp = MLP([3, 4, 2], dropout=0.5, rng=rng)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_zero_grad(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestNormalisationAndDropout:
    def test_batchnorm_normalises(self, rng):
        bn = BatchNorm1d(4)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(64, 4)))
        out = bn(x)
        assert abs(out.data.mean()) < 0.1
        assert abs(out.data.std() - 1.0) < 0.2

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(2, momentum=0.5)
        x = Tensor(rng.normal(size=(32, 2)))
        bn(x)
        bn.eval()
        out = bn(Tensor(np.zeros((4, 2))))
        assert out.shape == (4, 2)

    def test_batchnorm_shape_check(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.ones((2, 4))))

    def test_layernorm(self, rng):
        ln = LayerNorm(6)
        out = ln(Tensor(rng.normal(size=(3, 6))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)

    def test_dropout_train_vs_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((10, 10)))
        assert (drop(x).data == 0).any()
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestFunctional:
    def test_softmax_sums_to_one(self, rng):
        probs = F.softmax(Tensor(rng.normal(size=(5, 3))))
        np.testing.assert_allclose(probs.data.sum(axis=-1), 1.0)

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-9)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_embedding_lookup_grad(self, rng):
        table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        out = F.embedding_lookup(table, np.array([1, 1, 4]))
        out.sum().backward()
        assert table.grad[1].sum() == pytest.approx(6.0)
        assert table.grad[0].sum() == pytest.approx(0.0)


class TestLosses:
    def test_cross_entropy_known_value(self):
        logits = Tensor(np.array([[10.0, 0.0], [0.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-3

    def test_cross_entropy_validates(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 5]))

    def test_nll_matches_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 1])
        ce = cross_entropy(logits, labels).item()
        nll = nll_loss(F.log_softmax(logits), labels).item()
        assert ce == pytest.approx(nll)

    def test_regression_losses(self):
        pred = Tensor([1.0, 2.0, 3.0])
        target = np.array([1.0, 1.0, 5.0])
        assert mse_loss(pred, target).item() == pytest.approx((0 + 1 + 4) / 3)
        assert mae_loss(pred, target).item() == pytest.approx(1.0)
        assert mape_loss(pred, target).item() == pytest.approx((0 + 1 + 2 / 5) / 3)
        assert huber_loss(pred, target, delta=1.0).item() == pytest.approx((0 + 0.5 + 1.5) / 3)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(Tensor([1.0]), np.array([1.0]), delta=0.0)

    def test_accuracy_metrics(self):
        logits = np.array([[2.0, 1.0], [0.5, 1.0], [2.0, 0.0], [0.0, 3.0]])
        labels = np.array([0, 1, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(0.75)
        assert balanced_accuracy(logits, labels) == pytest.approx((1.0 + 2 / 3) / 2)


class TestOptimisers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        param = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(150):
            loss = (param * param).sum()
            param.zero_grad()
            loss.backward()
            optimizer.step()
        return float(param.data[0])

    def test_sgd_converges(self):
        assert abs(self._quadratic_step(SGD, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert abs(self._quadratic_step(SGD, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert abs(self._quadratic_step(Adam, lr=0.2)) < 1e-2

    def test_adamw_converges(self):
        assert abs(self._quadratic_step(AdamW, lr=0.2, weight_decay=0.01)) < 1e-2

    def test_invalid_hyperparameters(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam([param], lr=0.1, betas=(1.2, 0.9))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        param = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        (param * 100.0).sum().backward()
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm > 1.0
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_invalid(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedulers:
    def _optimizer(self):
        return SGD([Tensor(np.array([1.0]), requires_grad=True)], lr=1.0)

    def test_step_lr(self):
        sched = StepLR(self._optimizer(), step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)

    def test_exponential_lr(self):
        sched = ExponentialLR(self._optimizer(), gamma=0.5)
        assert sched.step() == pytest.approx(0.5)
        assert sched.step() == pytest.approx(0.25)

    def test_cosine_lr_endpoints(self):
        optimizer = self._optimizer()
        sched = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.0)
        values = [sched.step() for _ in range(10)]
        assert values[-1] == pytest.approx(0.0, abs=1e-9)
        assert values[0] > values[5] > values[-1]

    def test_warmup_cosine(self):
        sched = WarmupCosineLR(self._optimizer(), warmup_epochs=2, t_max=6)
        values = [sched.step() for _ in range(6)]
        assert values[0] == pytest.approx(0.5)
        assert values[1] == pytest.approx(1.0)
        assert values[-1] < values[2]

    def test_invalid_schedulers(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), t_max=0)
        with pytest.raises(ValueError):
            WarmupCosineLR(self._optimizer(), warmup_epochs=5, t_max=3)


class TestInit:
    def test_shapes_and_ranges(self, rng):
        w = init.xavier_uniform((10, 20), rng)
        assert w.shape == (10, 20)
        bound = np.sqrt(6.0 / 30)
        assert np.all(np.abs(w) <= bound + 1e-12)

    def test_kaiming_scale(self, rng):
        w = init.kaiming_normal((1000, 50), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.15)

    def test_zeros_ones(self):
        assert init.zeros((2, 2)).sum() == 0.0
        assert init.ones((2, 2)).sum() == 4.0

    def test_fan_in_out_invalid(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((), np.random.default_rng(0))
