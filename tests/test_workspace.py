"""Tests for the Workspace pipeline: defaults, artifact store, registries, caching."""

import dataclasses

import numpy as np
import pytest

import repro.workspace.pipeline as pipeline_module
from repro import api
from repro.hardware import DeviceSpec, get_device, list_devices, register_device, unregister_device
from repro.nas import (
    HGNASConfig,
    OracleLatencyEvaluator,
    dgcnn_architecture,
    list_latency_evaluators,
    make_latency_evaluator,
    register_latency_evaluator,
    rtx_fast_architecture,
    tx2_fast_architecture,
    unregister_latency_evaluator,
)
from repro.nas.latency_eval import EvaluatorRequest
from repro.serving import ModelRegistry
from repro.workspace import (
    DEFAULTS,
    ArtifactStore,
    InferenceDefaults,
    Workspace,
    canonical_key,
    dataset_fingerprint,
)


def tiny_search_config(num_classes: int, seed: int = 0, operation_iterations: int = 2) -> HGNASConfig:
    return HGNASConfig(
        num_positions=6,
        hidden_dim=12,
        supernet_k=4,
        num_classes=num_classes,
        population_size=4,
        function_iterations=1,
        operation_iterations=operation_iterations,
        function_epochs=1,
        operation_epochs=1,
        batch_size=5,
        eval_max_batches=1,
        paths_per_function_eval=1,
        seed=seed,
    )


class TestInferenceDefaults:
    def test_resolve_overrides_only_non_none(self):
        resolved = DEFAULTS.resolve(k=8, num_points=None)
        assert resolved.k == 8
        assert resolved.num_points == DEFAULTS.num_points
        assert DEFAULTS.resolve() is DEFAULTS

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceDefaults(k=0)
        with pytest.raises(ValueError):
            InferenceDefaults(num_classes=1)

    def test_api_helpers_share_one_k(self):
        """The old k=20 (profiling) vs k=10 (deployment) split is gone."""
        arch = rtx_fast_architecture()
        model = api.build_model(arch, num_classes=4)
        assert model.k == DEFAULTS.k
        deployed = api.deploy_architecture(arch, "gpu", num_classes=4, name="defaults-check")
        assert deployed.k == DEFAULTS.k == 20
        assert deployed.embed_dim == DEFAULTS.embed_dim

    def test_workspace_defaults_flow_into_stages(self):
        custom = InferenceDefaults(num_points=256, k=8, num_classes=10, embed_dim=32)
        ws = Workspace(device="gpu", defaults=custom)
        arch = dgcnn_architecture()
        profile = ws.profile(arch)
        reference = api.profile_architecture(arch, "gpu", num_points=256, k=8, num_classes=10)
        assert profile.total_latency_ms == pytest.approx(reference.total_latency_ms)
        model = ws.derive(arch, num_classes=4)
        assert model.k == 8


class TestArtifactStore:
    def test_key_is_order_independent(self):
        store = ArtifactStore(None)
        assert store.key_for("s", {"a": 1, "b": [2, 3]}) == store.key_for("s", {"b": [2, 3], "a": 1})
        assert store.key_for("s", {"a": 1}) != store.key_for("t", {"a": 1})
        assert canonical_key({"x": 1}) != canonical_key({"x": 2})

    def test_disk_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key_for("stage", {"seed": 0})
        assert store.load("stage", key) is None
        store.save("stage", key, meta={"answer": 42}, arrays={"w": np.arange(4.0)})
        # A fresh store over the same root sees the artifact (disk layer).
        reloaded = ArtifactStore(tmp_path).load("stage", key)
        assert reloaded is not None
        assert reloaded.meta["answer"] == 42
        np.testing.assert_array_equal(reloaded.arrays["w"], np.arange(4.0))
        assert (tmp_path / "stage" / key / "meta.json").exists()
        assert (tmp_path / "stage" / key / "arrays.npz").exists()

    def test_memory_only_store_caches(self):
        store = ArtifactStore(None)
        key = store.key_for("stage", {"seed": 0})
        store.save("stage", key, meta={"v": 1})
        assert store.load("stage", key).meta["v"] == 1
        assert store.stats()["root"] is None
        assert store.stats()["hits"] == 1

    def test_saved_arrays_are_insulated_from_mutation(self):
        store = ArtifactStore(None)
        weights = {"w": np.ones(3)}
        store.save("stage", "k", meta={}, arrays=weights)
        weights["w"] *= 100.0
        np.testing.assert_array_equal(store.load("stage", "k").arrays["w"], np.ones(3))

    def test_discard_and_contains(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("stage", "k", meta={"v": 1})
        assert store.contains("stage", "k")
        assert store.discard("stage", "k")
        assert not store.contains("stage", "k")
        assert not store.discard("stage", "k")

    def test_stats_count_misses(self):
        store = ArtifactStore(None)
        store.load("stage", "nope")
        assert store.stats()["misses"] == 1

    def test_interrupted_save_is_not_a_hit(self, tmp_path):
        """meta.json is the commit marker: arrays without it are ignored."""
        store = ArtifactStore(tmp_path)
        store.save("stage", "k", meta={"v": 1}, arrays={"w": np.ones(2)})
        # Simulate a crash between the arrays write and the meta commit.
        (tmp_path / "stage" / "k" / "meta.json").unlink()
        assert ArtifactStore(tmp_path).load("stage", "k") is None


class TestDeviceRegistry:
    def test_register_custom_spec(self):
        custom = get_device("jetson-tx2").with_overrides(ns_per_flop=0.5)
        custom = dataclasses.replace(custom, name="orin-sim", display_name="Orin (simulated)")
        register_device(custom, aliases=("orin",))
        try:
            assert get_device("orin") is get_device("orin-sim")
            assert "orin-sim" in list_devices()
            latency = api.measure_latency(dgcnn_architecture(), "orin")
            assert latency > 0
        finally:
            unregister_device("orin-sim")
        assert "orin-sim" not in list_devices()
        with pytest.raises(KeyError):
            get_device("orin")

    def test_duplicate_registration_rejected(self):
        custom = dataclasses.replace(get_device("pi"), name="dup-device")
        register_device(custom)
        try:
            with pytest.raises(ValueError):
                register_device(custom)
            register_device(custom, replace=True)  # explicit replace is allowed
        finally:
            unregister_device("dup-device")

    def test_alias_stealing_rejected(self):
        custom = dataclasses.replace(get_device("pi"), name="alias-thief")
        with pytest.raises(ValueError):
            register_device(custom, aliases=("gpu",))
        assert "alias-thief" not in list_devices()
        assert get_device("gpu").name == "rtx3080"


class TestEvaluatorRegistry:
    def test_builtins_registered(self):
        assert {"oracle", "measurement", "predictor"} <= set(list_latency_evaluators())

    def test_make_unknown_raises_value_error(self):
        request = EvaluatorRequest(device=get_device("gpu"))
        with pytest.raises(ValueError):
            make_latency_evaluator("psychic", request)

    def test_custom_evaluator_usable_by_name(self):
        @register_latency_evaluator("constant-test")
        def _factory(request):
            class Constant:
                query_cost_s = 0.0

                def evaluate(self, architecture):
                    return 7.0

            return Constant()

        try:
            request = EvaluatorRequest(device=get_device("gpu"))
            assert make_latency_evaluator("constant-test", request).evaluate(None) == 7.0
            with pytest.raises(ValueError):
                register_latency_evaluator("constant-test", _factory)
        finally:
            unregister_latency_evaluator("constant-test")
        assert "constant-test" not in list_latency_evaluators()

    def test_oracle_factory_matches_direct_construction(self):
        device = get_device("pi")
        request = EvaluatorRequest(device=device, num_points=128, k=8, num_classes=10)
        via_registry = make_latency_evaluator("oracle", request)
        direct = OracleLatencyEvaluator(device, num_points=128, k=8, num_classes=10)
        arch = dgcnn_architecture()
        assert via_registry.evaluate(arch) == pytest.approx(direct.evaluate(arch))


class TestPredictorCaching:
    def test_second_call_skips_training(self, tmp_path, monkeypatch):
        calls = {"train": 0}
        real_train = pipeline_module.train_predictor

        def counting_train(*args, **kwargs):
            calls["train"] += 1
            return real_train(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "train_predictor", counting_train)

        ws = Workspace(device="gpu", root=tmp_path)
        first = ws.train_predictor(num_samples=40, epochs=4, seed=0)
        second = ws.train_predictor(num_samples=40, epochs=4, seed=0)
        assert calls["train"] == 1

        # A fresh workspace over the same root restores from disk.
        restored = Workspace(device="gpu", root=tmp_path).train_predictor(num_samples=40, epochs=4, seed=0)
        assert calls["train"] == 1
        arch = dgcnn_architecture()
        assert first.predictor.predict_latency_ms(arch) == pytest.approx(
            restored.predictor.predict_latency_ms(arch)
        )
        assert dataclasses.asdict(first.metrics) == dataclasses.asdict(second.metrics)

        # fresh=True bypasses the cache; different inputs re-train.
        ws.train_predictor(num_samples=40, epochs=4, seed=0, fresh=True)
        assert calls["train"] == 2
        ws.train_predictor(num_samples=40, epochs=4, seed=1)
        assert calls["train"] == 3

    def test_different_devices_do_not_share(self, tmp_path):
        ws_gpu = Workspace(device="gpu", root=tmp_path)
        ws_pi = Workspace(device="pi", root=tmp_path)
        gpu = ws_gpu.train_predictor(num_samples=30, epochs=3)
        pi = ws_pi.train_predictor(num_samples=30, epochs=3)
        assert gpu.device == "rtx3080"
        assert pi.device == "raspberry-pi"
        # The device spec is part of the content key: two entries, no sharing.
        assert ws_gpu.store.misses == 1 and ws_pi.store.misses == 1
        assert len(list((tmp_path / "predictor").iterdir())) == 2


class TestSearchCaching:
    def test_repeat_search_is_a_cache_hit(self, tmp_path, tiny_train, tiny_test):
        config = tiny_search_config(tiny_train.num_classes)
        ws = Workspace(device="tx2", root=tmp_path)
        first = ws.search(tiny_train, tiny_test, config=config)
        hits_before = ws.store.hits
        second = Workspace(device="tx2", root=tmp_path).search(tiny_train, tiny_test, config=config)
        assert first.best_architecture.to_dict() == second.best_architecture.to_dict()
        assert first.best_score == pytest.approx(second.best_score)
        assert [dataclasses.asdict(p) for p in first.history] == [dataclasses.asdict(p) for p in second.history]
        ws_hit = ws.search(tiny_train, tiny_test, config=config)
        assert ws.store.hits == hits_before + 1
        assert ws_hit.strategy == "multi-stage"

    def test_predictor_oracle_reuses_cached_predictor(self, tmp_path, tiny_train, tiny_test, monkeypatch):
        calls = {"train": 0}
        real_train = pipeline_module.train_predictor

        def counting_train(*args, **kwargs):
            calls["train"] += 1
            return real_train(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "train_predictor", counting_train)

        kwargs = dict(latency_oracle="predictor", predictor_num_samples=30, predictor_epochs=3)
        ws = Workspace(device="tx2", root=tmp_path)
        ws.search(tiny_train, tiny_test, config=tiny_search_config(tiny_train.num_classes), **kwargs)
        assert calls["train"] == 1

        # A different search (more EA iterations) misses the search cache but
        # reuses the persisted predictor: no re-training.
        other = tiny_search_config(tiny_train.num_classes, operation_iterations=3)
        Workspace(device="tx2", root=tmp_path).search(tiny_train, tiny_test, config=other, **kwargs)
        assert calls["train"] == 1

    def test_dataset_change_invalidates(self, tmp_path, tiny_train, tiny_test):
        config = tiny_search_config(tiny_train.num_classes)
        ws = Workspace(device="tx2", root=tmp_path)
        ws.search(tiny_train, tiny_test, config=config)
        assert dataset_fingerprint(tiny_train) != dataset_fingerprint(tiny_train.subset([0, 1]))
        key_count = ws.store.stats()["memory_entries"]
        ws.search(tiny_train.subset(list(range(10))), tiny_test, config=config)
        assert ws.store.stats()["memory_entries"] == key_count + 1

    def test_predictor_oracle_key_includes_workspace_defaults(self, tmp_path, tiny_train, tiny_test):
        """Two workspaces with different defaults must not share predictor-path results."""
        config = tiny_search_config(tiny_train.num_classes)
        kwargs = dict(latency_oracle="predictor", predictor_num_samples=30, predictor_epochs=3)
        small = Workspace(device="tx2", root=tmp_path, defaults=InferenceDefaults(num_points=64, k=8))
        large = Workspace(device="tx2", root=tmp_path, defaults=InferenceDefaults(num_points=512, k=32))
        small.search(tiny_train, tiny_test, config=config, **kwargs)
        large.search(tiny_train, tiny_test, config=config, **kwargs)
        # `large` must re-run (search + predictor misses), not reuse `small`'s
        # artifacts trained for a different deployment scenario.
        assert large.store.hits == 0
        assert large.store.misses == 2

    def test_invalid_oracle_and_strategy(self, tiny_train, tiny_test):
        ws = Workspace(device="tx2")
        with pytest.raises(ValueError):
            ws.search(tiny_train, tiny_test, latency_oracle="psychic")
        with pytest.raises(ValueError):
            ws.search(tiny_train, tiny_test, strategy="three-stage")


class TestDeriveDeployServe:
    def test_trained_derive_is_cached(self, tmp_path, tiny_train, monkeypatch):
        calls = {"fit": 0}
        real_fit = pipeline_module.train_classifier

        def counting_fit(*args, **kwargs):
            calls["fit"] += 1
            return real_fit(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "train_classifier", counting_fit)

        arch = tx2_fast_architecture()
        ws = Workspace(device="tx2", root=tmp_path)
        first = ws.derive(arch, tiny_train.num_classes, k=4, embed_dim=16, train_dataset=tiny_train, train_epochs=1)
        second = ws.derive(arch, tiny_train.num_classes, k=4, embed_dim=16, train_dataset=tiny_train, train_epochs=1)
        assert calls["fit"] == 1
        for name, value in first.state_dict().items():
            np.testing.assert_array_equal(value, second.state_dict()[name])
        # Untrained derivation never touches the trainer or the cache.
        ws.derive(arch, tiny_train.num_classes, k=4)
        assert calls["fit"] == 1

    def test_deploy_and_serve_with_warm_engine(self, tmp_path, tiny_train):
        ws = Workspace(device="pi", root=tmp_path)
        deployed = ws.deploy(
            tx2_fast_architecture(),
            num_classes=tiny_train.num_classes,
            name="ws-serve",
            k=4,
            embed_dim=16,
            train_dataset=tiny_train,
            train_epochs=1,
        )
        assert deployed.name in ws.registry
        stream = [sample.points for sample in tiny_train][:4]
        report = ws.serve(stream)
        assert len(report.results) == 4
        # Second wave through the same workspace reuses the warm engine cache.
        again = ws.serve([stream[0]])
        assert again.engine is report.engine
        assert again.results[0].from_cache

    def test_serve_without_deploy_raises(self):
        with pytest.raises(ValueError):
            Workspace(device="pi").serve([np.zeros((8, 3))])

    def test_serve_default_is_last_deployed_even_after_replace(self, tiny_train):
        ws = Workspace(device="pi")
        ws.deploy(tx2_fast_architecture(), num_classes=4, name="a", k=4, embed_dim=16)
        ws.deploy(tx2_fast_architecture(), num_classes=4, name="b", k=4, embed_dim=16)
        # Replacing "a" keeps its registry slot but makes it the most recent.
        ws.deploy(tx2_fast_architecture(), num_classes=4, name="a", k=4, embed_dim=16, replace=True)
        report = ws.serve([tiny_train[0].points])
        assert report.results[0].model == "a"

    def test_direct_registry_register_uses_shared_defaults(self):
        registry = ModelRegistry()
        entry = registry.register("direct", tx2_fast_architecture(), get_device("tx2"), num_classes=4)
        assert entry.k == DEFAULTS.k
        assert entry.embed_dim == DEFAULTS.embed_dim
        assert entry.model.k == DEFAULTS.k


class TestModelRegistryAdd:
    def test_add_preserves_every_field(self, tiny_train):
        deployed = api.deploy_architecture(
            tx2_fast_architecture(), "tx2", num_classes=tiny_train.num_classes, name="adopt", k=4, slo_ms=1e6
        )
        registry = ModelRegistry()
        adopted = registry.add(deployed)
        assert registry.get("adopt") is adopted
        for field in dataclasses.fields(type(deployed)):
            if field.name == "generation":
                continue
            assert getattr(adopted, field.name) is getattr(deployed, field.name), field.name
        assert adopted.generation == 1

    def test_add_rejects_duplicates_without_replace(self, tiny_train):
        deployed = api.deploy_architecture(tx2_fast_architecture(), "tx2", num_classes=4, name="dup")
        registry = ModelRegistry()
        registry.add(deployed)
        with pytest.raises(ValueError):
            registry.add(deployed)
        replaced = registry.add(deployed, replace=True)
        assert replaced.generation == 2


class TestThrowawayWorkspaceShims:
    def test_api_matches_workspace_results(self):
        arch = dgcnn_architecture()
        via_api = api.measure_latency(arch, "pi")
        via_ws = Workspace(device="pi").measure_latency(arch)
        assert via_api == pytest.approx(via_ws)

    def test_device_spec_passthrough(self):
        spec = get_device("gpu")
        ws = Workspace(device=spec)
        assert ws.device is spec
        assert isinstance(ws.device, DeviceSpec)


# ---------------------------------------------------------------------- #
# Concurrent-writer safety (multi-worker pools share one --root)
# ---------------------------------------------------------------------- #
def _store_stress_worker(root, stage, shared_key, writer_id, iterations, errors):
    """One racing process: repeatedly write and read back the same key."""
    try:
        from repro.workspace.store import ArtifactStore

        meta = {"v": 7}
        arrays = {"w": np.full(8, 7.0)}
        for iteration in range(iterations):
            store = ArtifactStore(root)
            # Same key, same content: the content-addressed contract all
            # racing writers of one key obey.
            store.save(stage, shared_key, meta=meta, arrays=arrays)
            store.save(stage, f"own-{writer_id}", meta={"writer": writer_id}, arrays=arrays)
            loaded = ArtifactStore(root).load(stage, shared_key)
            if loaded is not None:  # a racing discard below may blank it
                if loaded.meta != meta or not np.array_equal(loaded.arrays["w"], arrays["w"]):
                    errors.put(f"worker {writer_id} iteration {iteration}: torn read {loaded.meta}")
            if writer_id == 0 and iteration % 5 == 4:
                store.discard(stage, shared_key)
    except Exception as error:  # noqa: BLE001 - reported to the parent
        errors.put(f"worker {writer_id}: {type(error).__name__}: {error}")


class TestArtifactStoreConcurrency:
    def test_racing_writers_never_tear(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        errors = context.Queue()
        shared_key = "deadbeef00112233"
        processes = [
            context.Process(
                target=_store_stress_worker,
                args=(str(tmp_path), "stress", shared_key, writer_id, 20, errors),
            )
            for writer_id in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
        failures = []
        while not errors.empty():
            failures.append(errors.get())
        assert not failures, failures
        assert all(process.exitcode == 0 for process in processes)
        # Last write wins: the final state is one writer's complete entry.
        final = ArtifactStore(tmp_path)
        for writer_id in range(4):
            artifact = final.load("stress", f"own-{writer_id}")
            assert artifact is not None and artifact.meta == {"writer": writer_id}
        # No staging litter: every temp file was committed or is orphaned
        # under a unique name that discard/save never confuses with data.
        committed = {"meta.json", "arrays.npz"}
        for entry in (tmp_path / "stress").glob("*/*"):
            assert entry.name in committed or entry.name.startswith("."), entry
