"""Tests for the supernet, derived models, trainer, latency evaluators and
the full multi-stage search."""

import numpy as np
import pytest

from repro.data import collate
from repro.hardware import get_device
from repro.nas import (
    HGNAS,
    Architecture,
    DerivedModel,
    FunctionSet,
    HGNASConfig,
    MeasurementLatencyEvaluator,
    ObjectiveConfig,
    OracleLatencyEvaluator,
    Supernet,
    SupernetConfig,
    device_fast_architecture,
    dgcnn_architecture,
    evaluate_classifier,
    evaluate_path,
    train_classifier,
    train_supernet,
)
from repro.utils.timer import VirtualClock


def _supernet(num_classes=4, positions=6):
    return Supernet(SupernetConfig(num_positions=positions, hidden_dim=12, k=4, num_classes=num_classes))


def _search_config(num_classes=4):
    return HGNASConfig(
        num_positions=6,
        hidden_dim=12,
        supernet_k=4,
        num_classes=num_classes,
        population_size=4,
        function_iterations=2,
        operation_iterations=2,
        function_epochs=1,
        operation_epochs=1,
        batch_size=5,
        eval_max_batches=1,
        paths_per_function_eval=1,
        seed=0,
    )


class TestSupernet:
    def test_forward_any_path(self, tiny_train, rng):
        supernet = _supernet()
        batch = collate([tiny_train[i] for i in range(4)])
        for _ in range(5):
            path = supernet.random_path(rng)
            logits = supernet(batch, path)
            assert logits.shape == (4, 4)
            assert np.all(np.isfinite(logits.data))

    def test_path_position_mismatch(self, tiny_train, rng):
        supernet = _supernet(positions=6)
        batch = collate([tiny_train[0]])
        path = Architecture.random(8, rng)
        with pytest.raises(ValueError):
            supernet(batch, path)

    def test_fixed_function_paths(self, rng):
        supernet = _supernet()
        functions = FunctionSet(combine_dim=16)
        path = supernet.random_path(rng, upper_functions=functions, lower_functions=functions)
        assert path.upper_functions == functions

    def test_weight_sharing_across_paths(self, tiny_train, rng):
        supernet = _supernet()
        batch = collate([tiny_train[i] for i in range(4)])
        before = supernet.num_parameters()
        supernet(batch, supernet.random_path(rng))
        supernet(batch, supernet.random_path(rng))
        assert supernet.num_parameters() == before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupernetConfig(num_positions=5)
        with pytest.raises(ValueError):
            SupernetConfig(hidden_dim=0)


class TestTrainer:
    def test_train_classifier_history(self, tiny_train, tiny_test, rng):
        from repro.models import DGCNN, DGCNNConfig

        model = DGCNN(DGCNNConfig(num_classes=4, k=4, layer_dims=(8,), embed_dim=16, classifier_hidden=(16,)))
        history = train_classifier(model, tiny_train, epochs=2, batch_size=5, rng=rng, val_dataset=tiny_test)
        assert history.num_epochs == 2
        assert len(history.val_accuracies) == 2
        metrics = evaluate_classifier(model, tiny_test, batch_size=5)
        assert 0.0 <= metrics.overall_accuracy <= 1.0
        assert metrics.num_samples == len(tiny_test)

    def test_train_supernet_and_evaluate_path(self, tiny_train, rng):
        supernet = _supernet()
        history = train_supernet(
            supernet, tiny_train, lambda r: supernet.random_path(r), epochs=1, batch_size=5, rng=rng
        )
        assert history.num_epochs == 1
        accuracy = evaluate_path(supernet, supernet.random_path(rng), tiny_train, batch_size=5, max_batches=2)
        assert 0.0 <= accuracy <= 1.0

    def test_invalid_epochs(self, tiny_train, rng):
        supernet = _supernet()
        with pytest.raises(ValueError):
            train_supernet(supernet, tiny_train, lambda r: supernet.random_path(r), epochs=0)


class TestDerivedModel:
    def test_forward_shapes(self, tiny_train):
        model = DerivedModel(device_fast_architecture("rtx3080"), num_classes=4, k=4, embed_dim=16)
        batch = collate([tiny_train[i] for i in range(3)])
        assert model(batch).shape == (3, 4)

    def test_trainable(self, tiny_train, rng):
        model = DerivedModel(device_fast_architecture("jetson-tx2"), num_classes=4, k=4, embed_dim=16)
        history = train_classifier(model, tiny_train, epochs=2, batch_size=5, rng=rng)
        assert history.losses[-1] <= history.losses[0] * 1.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DerivedModel(dgcnn_architecture(), num_classes=4, k=0)


class TestLatencyEvaluators:
    def test_oracle_matches_hardware_model(self):
        device = get_device("rtx3080")
        evaluator = OracleLatencyEvaluator(device, num_points=1024, k=20, num_classes=40)
        arch = dgcnn_architecture()
        from repro.hardware import estimate_latency

        expected = estimate_latency(arch.to_workload(1024, 20, 40), device).total_ms
        assert evaluator.evaluate(arch) == pytest.approx(expected)
        assert evaluator.query_cost_s == 0.0

    def test_measurement_evaluator_is_noisy_and_costly(self, rng):
        device = get_device("raspberry-pi")
        evaluator = MeasurementLatencyEvaluator(device, num_points=512, k=10, num_classes=10, rng=rng)
        arch = dgcnn_architecture()
        values = {evaluator.evaluate(arch) for _ in range(3)}
        assert len(values) > 1
        assert evaluator.query_cost_s == device.measurement_round_trip_s


class TestHGNASSearch:
    def test_multi_stage_search_end_to_end(self, tiny_train, tiny_test):
        config = _search_config()
        evaluator = OracleLatencyEvaluator(get_device("rtx3080"), num_points=256, k=10, num_classes=4)
        search = HGNAS(config, tiny_train, tiny_test, evaluator, rng=np.random.default_rng(0))
        result = search.run()
        assert result.best_architecture.num_positions == config.num_positions
        assert result.best_latency_ms > 0
        assert 0.0 <= result.best_accuracy <= 1.0
        assert result.search_time_s > 0
        assert result.strategy == "multi-stage"
        assert len(result.stage1_history) > 0 and len(result.stage2_history) > 0

    def test_one_stage_search(self, tiny_train, tiny_test):
        config = _search_config()
        evaluator = OracleLatencyEvaluator(get_device("i7-8700k"), num_points=256, k=10, num_classes=4)
        search = HGNAS(config, tiny_train, tiny_test, evaluator, rng=np.random.default_rng(0))
        result = search.run_one_stage(iterations=3)
        assert result.strategy == "one-stage"
        assert result.best_latency_ms > 0

    def test_latency_constraint_respected(self, tiny_train, tiny_test):
        config = _search_config()
        device = get_device("rtx3080")
        evaluator = OracleLatencyEvaluator(device, num_points=1024, k=20, num_classes=4)
        constraint = 20.0
        objective = ObjectiveConfig(alpha=1.0, beta=0.1, latency_constraint_ms=constraint, latency_scale_ms=51.8)
        search = HGNAS(
            config, tiny_train, tiny_test, evaluator, objective=objective, rng=np.random.default_rng(1)
        )
        result = search.run()
        if result.best_score > 0:
            assert result.best_latency_ms < constraint

    def test_clock_is_shared(self, tiny_train, tiny_test):
        config = _search_config()
        clock = VirtualClock()
        evaluator = OracleLatencyEvaluator(get_device("gpu"), num_points=256, k=10, num_classes=4)
        search = HGNAS(config, tiny_train, tiny_test, evaluator, rng=np.random.default_rng(0), clock=clock)
        result = search.run()
        assert clock.now == pytest.approx(result.search_time_s)
        assert clock.now >= (config.function_epochs + config.operation_epochs) * config.epoch_cost_s

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HGNASConfig(population_size=1)
        with pytest.raises(ValueError):
            HGNASConfig(function_iterations=0)
