"""Tests for :mod:`repro.analysis`: shape checker, linter and their wiring."""

from __future__ import annotations

import json
import textwrap

import numpy as np
import pytest

from repro.analysis import (
    StaticSignature,
    infer_signature,
    trace_architecture,
    validate_architecture,
    validate_genotype,
)
from repro.analysis.lint import (
    ALL_RULES,
    LintViolation,
    lint_paths,
)
from repro.analysis.lint.runner import default_lint_root
from repro.cli import main as cli_main
from repro.data.dataset import Batch
from repro.defaults import DEFAULTS
from repro.hardware.device import get_device
from repro.nas.architecture import Architecture
from repro.nas.derived import DerivedModel
from repro.nas.design_space import DesignSpace, DesignSpaceConfig
from repro.nas.evolution import EvolutionConfig, EvolutionarySearch
from repro.nas.ops import FunctionSet, OperationType
from repro.nas.presets import dgcnn_architecture
from repro.nas.search import HGNAS, HGNASConfig
from repro.nn.tensor import no_grad
from repro.obs import get_metrics, reset_observability
from repro.serving import InferenceEngine, ModelRegistry


# ---------------------------------------------------------------------- #
# Ground truth: what the runtime actually accepts
# ---------------------------------------------------------------------- #
def _one_cloud_batch(num_points: int, input_dim: int, rng: np.random.Generator) -> Batch:
    return Batch(
        points=rng.standard_normal((num_points, input_dim)).astype(np.float32),
        batch=np.zeros(num_points, dtype=np.int64),
        labels=np.zeros(1, dtype=np.int64),
        num_graphs=1,
    )


def _runtime_accepts(
    genotype: dict,
    num_points: int,
    k: int,
    num_classes: int,
    embed_dim: int,
    rng: np.random.Generator,
) -> bool:
    """Build + forward the genotype exactly like a deployment would."""
    try:
        architecture = Architecture.from_dict(genotype)
        model = DerivedModel(
            architecture, num_classes=num_classes, k=k, embed_dim=embed_dim, seed=0
        )
        model.eval()
        batch = _one_cloud_batch(num_points, architecture.input_dim, rng)
        with no_grad():
            model(batch)
        return True
    except (KeyError, TypeError, ValueError):
        return False


def _corrupt(genotype: dict, mode: str, rng: np.random.Generator) -> dict:
    """Apply one modelled corruption class to a valid genotype dict."""
    corrupted = json.loads(json.dumps(genotype))  # deep copy
    half = "upper_functions" if rng.random() < 0.5 else "lower_functions"
    if mode == "unknown-op":
        index = int(rng.integers(0, len(corrupted["operations"])))
        corrupted["operations"][index] = "pool"
    elif mode == "empty-operations":
        corrupted["operations"] = []
    elif mode == "bad-aggregator":
        corrupted[half]["aggregator"] = "median"
    elif mode == "bad-message-type":
        corrupted[half]["message_type"] = "spooky"
    elif mode == "bad-combine-dim":
        corrupted[half]["combine_dim"] = 48
    elif mode == "bad-sample-method":
        corrupted[half]["sample_method"] = "farthest"
    elif mode == "bad-connect-mode":
        corrupted[half]["connect_mode"] = "dense"
    elif mode == "bad-input-dim":
        corrupted["input_dim"] = 0
    elif mode == "missing-functions":
        del corrupted[half]
    else:  # pragma: no cover
        raise ValueError(mode)
    return corrupted


_CORRUPTION_MODES = (
    "unknown-op",
    "empty-operations",
    "bad-aggregator",
    "bad-message-type",
    "bad-combine-dim",
    "bad-sample-method",
    "bad-connect-mode",
    "bad-input-dim",
    "missing-functions",
)


class TestStaticRuntimeAgreement:
    def test_static_accept_reject_matches_runtime_on_random_genotypes(self):
        """Zero false accepts / false rejects over >= 200 sampled cases.

        Cases mix structurally valid random architectures under degenerate
        and healthy deployment scenarios with every modelled corruption
        class; the oracle is an actual DerivedModel construction + forward.
        """
        rng = np.random.default_rng(2023)
        space = DesignSpace(DesignSpaceConfig(num_positions=6))
        scenarios = [
            # (num_points, k, num_classes, embed_dim)
            (8, 4, 4, 8),
            (2, 8, 4, 8),  # k clamps: must NOT be a static reject
            (1, 2, 4, 8),  # knn samples cannot run; random-sample archs can
            (3, 2, 2, 8),
            (8, 4, 1, 8),  # degenerate classifier
            (8, 4, 4, 1),  # degenerate embedding
        ]
        checked = 0
        for case in range(150):
            genotype = space.random_architecture(rng).to_dict()
            if case % 3 != 0:
                genotype = _corrupt(
                    genotype, _CORRUPTION_MODES[case % len(_CORRUPTION_MODES)], rng
                )
            num_points, k, num_classes, embed_dim = scenarios[case % len(scenarios)]
            static_ok = validate_genotype(
                genotype,
                num_points=num_points,
                k=k,
                num_classes=num_classes,
                embed_dim=embed_dim,
            ).ok
            runtime_ok = _runtime_accepts(genotype, num_points, k, num_classes, embed_dim, rng)
            assert static_ok == runtime_ok, (
                f"case {case}: static={static_ok} runtime={runtime_ok} "
                f"scenario={(num_points, k, num_classes, embed_dim)} genotype={genotype}"
            )
            checked += 1
        # Healthy-scenario sweep: purely valid genotypes must all pass both.
        for case in range(80):
            genotype = space.random_architecture(rng).to_dict()
            static_ok = validate_genotype(genotype, num_points=16, k=4).ok
            runtime_ok = _runtime_accepts(genotype, 16, 4, DEFAULTS.num_classes, DEFAULTS.embed_dim, rng)
            assert static_ok and runtime_ok, f"case {case}: genotype={genotype}"
            checked += 1
        assert checked >= 200

    def test_k_larger_than_cloud_warns_but_accepts(self):
        architecture = dgcnn_architecture()
        report = validate_architecture(architecture, num_points=4, k=20)
        assert report.ok
        assert any(diag.code == "k-clamped" for diag in report.warnings)

    def test_knn_single_point_is_rejected_with_position(self):
        architecture = dgcnn_architecture()
        report = validate_architecture(architecture, num_points=1)
        assert not report.ok
        assert all(diag.code == "knn-single-point" for diag in report.errors)
        assert report.errors[0].position >= 0

    def test_dead_trailing_sample_warns(self):
        architecture = Architecture(
            operations=(OperationType.AGGREGATE, OperationType.SAMPLE)
        )
        report = validate_architecture(architecture)
        assert report.ok
        assert any(diag.code == "dead-sample" for diag in report.warnings)

    def test_pointwise_architecture_warns_no_aggregate(self):
        architecture = Architecture(operations=(OperationType.COMBINE,))
        report = validate_architecture(architecture)
        assert report.ok
        assert any(diag.code == "no-aggregate" for diag in report.warnings)


class TestShapes:
    def test_trace_matches_effective_ops_widths(self):
        architecture = dgcnn_architecture()
        shapes = trace_architecture(architecture)
        effective = architecture.effective_ops()
        assert [(s.in_dim, s.out_dim) for s in shapes] == [
            (op.in_dim, op.out_dim) for op in effective
        ]
        assert shapes[-1].out_dim == architecture.output_dim()

    def test_signature_round_trip_and_request_validation(self):
        architecture = dgcnn_architecture()
        signature = infer_signature(architecture, num_classes=10, k=8, embed_dim=32)
        assert signature.uses_knn and signature.min_points == 2
        restored = StaticSignature.from_dict(signature.to_dict())
        assert restored == signature
        assert restored.validate_request(1024, architecture.input_dim) == []
        assert restored.validate_request(1, architecture.input_dim)  # below min_points
        assert restored.validate_request(1024, architecture.input_dim + 1)

    def test_random_sampling_architecture_serves_single_point(self):
        functions = FunctionSet(sample_method="random")
        architecture = Architecture(
            operations=(OperationType.SAMPLE, OperationType.AGGREGATE),
            upper_functions=functions,
            lower_functions=functions,
        )
        signature = infer_signature(architecture, num_classes=4)
        assert signature.min_points == 1 and signature.uses_random

    def test_from_dict_rejects_unknown_format(self):
        data = infer_signature(dgcnn_architecture(), num_classes=4).to_dict()
        data["format"] = "something/else"
        with pytest.raises(ValueError, match="format"):
            StaticSignature.from_dict(data)


# ---------------------------------------------------------------------- #
# Linter: golden diagnostics per rule + waivers + repo gate
# ---------------------------------------------------------------------- #
def _violations_for(tmp_path, source: str, rule_name: str) -> list[LintViolation]:
    fixture = tmp_path / "fixture.py"
    fixture.write_text(textwrap.dedent(source))
    return [v for v in lint_paths([fixture]) if v.rule == rule_name]


class TestLintRules:
    def test_dtype_literal_rule(self, tmp_path):
        violations = _violations_for(
            tmp_path,
            """
            import numpy as np

            a = np.zeros(3, dtype=np.float64)
            b = np.asarray([1.0], dtype=float)
            c = a.astype(float)
            ok = np.zeros(3, dtype=np.int64)
            """,
            "dtype-literal",
        )
        assert [v.line for v in violations] == [4, 5, 6]
        assert "float64" in violations[0].message

    def test_rng_discipline_rule(self, tmp_path):
        violations = _violations_for(
            tmp_path,
            """
            import numpy as np
            from numpy.random import shuffle

            x = np.random.rand(3)
            rng = np.random.default_rng(0)

            def annotated(generator: np.random.Generator) -> None:
                generator.shuffle(x)
            """,
            "rng-discipline",
        )
        assert [v.line for v in violations] == [3, 5]

    def test_obs_metric_naming_rule(self, tmp_path):
        violations = _violations_for(
            tmp_path,
            """
            from repro.obs import get_metrics, get_tracer

            get_metrics().count("bad")
            get_metrics().count("nas.evolution.generations")
            metrics = get_metrics()
            metrics.set_gauge("Nas.Evolution.Best", 1.0)
            with get_tracer().span("x"):
                pass
            with get_tracer().span("workspace.search"):
                pass
            """,
            "obs-metric-naming",
        )
        assert [v.line for v in violations] == [4, 7, 8]

    def test_lazy_export_sync_rule(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        init = package / "__init__.py"
        init.write_text(
            '_LAZY_EXPORTS = {\n'
            '    "Workspace": "repro.workspace",\n'
            '    "totally_missing_name": "repro.api",\n'
            '    "also_missing": "repro.no_such_module",\n'
            "}\n"
        )
        violations = [v for v in lint_paths([init]) if v.rule == "lazy-export-sync"]
        messages = "\n".join(v.message for v in violations)
        assert len(violations) == 2
        assert "totally_missing_name" in messages
        assert "unresolvable module" in messages

    def test_unvalidated_index_rule_and_waiver(self, tmp_path):
        violations = _violations_for(
            tmp_path,
            """
            from repro.graph.scatter import scatter, validate_index

            def bad(x, edges):
                return scatter(x, edges, 4, "sum", validated=True)

            def good(x, edges):
                validate_index(edges, 4)
                return scatter(x, edges, 4, "sum", validated=True)

            def waived(x, edges):
                # repro-lint: allow[unvalidated-index] edges validated by the caller
                return scatter(x, edges, 4, "sum", validated=True)

            def unvalidated_kw_false(x, edges):
                return scatter(x, edges, 4, "sum", validated=False)
            """,
            "unvalidated-index",
        )
        assert [v.line for v in violations] == [5]

    def test_waiver_without_reason_is_flagged(self, tmp_path):
        violations = _violations_for(
            tmp_path,
            """
            from repro.graph.scatter import scatter

            def waived(x, edges):
                # repro-lint: allow[unvalidated-index]
                return scatter(x, edges, 4, "sum", validated=True)
            """,
            "unvalidated-index",
        )
        # The suppression does not apply (no reason) and the empty waiver is
        # itself reported.
        assert len(violations) == 2
        assert any("no reason" in v.message for v in violations)

    def test_backend_primitive_rule(self, tmp_path):
        violations = _violations_for(
            tmp_path,
            """
            import numpy as np

            def bad_scatter(out, index, values):
                np.add.at(out, index, values)

            def bad_reduce(values, starts, reducer):
                return reducer.reduceat(values, starts, axis=0)

            def bad_extreme(out, index, values):
                np.maximum.at(out, index, values)

            def waived(out, index, values):
                # repro-lint: allow[backend-primitive] fixture exercising the waiver path
                np.add.at(out, index, values)

            def fine(out, index, values):
                out[index] = values
                return np.add(out, values)
            """,
            "backend-primitive",
        )
        assert [v.line for v in violations] == [5, 8, 11]
        assert "segment-reduction" in violations[1].message
        assert "scatter" in violations[0].message

    def test_backend_primitive_rule_exempts_backends_package(self):
        import pathlib

        import repro

        backends_dir = pathlib.Path(repro.__file__).parent / "backends"
        violations = [v for v in lint_paths([backends_dir]) if v.rule == "backend-primitive"]
        assert violations == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        violations = lint_paths([broken])
        assert [v.rule for v in violations] == ["syntax-error"]

    def test_repo_is_lint_clean(self):
        """The gate the CI job enforces: zero violations over src/repro."""
        violations = lint_paths()
        assert violations == [], "\n".join(v.format() for v in violations)
        assert default_lint_root().name == "repro"

    def test_rule_names_are_unique_and_documented(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(set(names)) == len(names) == 6
        assert all(rule.description for rule in ALL_RULES)


# ---------------------------------------------------------------------- #
# Evolution wiring: pre-scoring rejection
# ---------------------------------------------------------------------- #
class TestEvolutionValidation:
    @staticmethod
    def _search(validate, seed: int = 0, **kwargs) -> EvolutionarySearch:
        rng = np.random.default_rng(seed)
        return EvolutionarySearch(
            EvolutionConfig(population_size=6),
            initialize=lambda r: int(r.integers(0, 100)),
            mutate=lambda g, r, n: int(g + r.integers(-3, 4)),
            evaluate=float,
            rng=rng,
            validate=validate,
            **kwargs,
        )

    def test_invalid_candidates_rejected_before_scoring(self):
        reset_observability()
        scored: list[int] = []

        def evaluate(genotype: int) -> float:
            scored.append(genotype)
            return float(genotype)

        search = self._search(lambda g: g % 2 == 0)
        search.evaluate_fn = evaluate
        result = search.run(4)
        assert result.rejections > 0
        assert all(genotype % 2 == 0 for genotype in scored)
        assert get_metrics().counter("nas.analysis.rejected").value == result.rejections

    def test_all_valid_run_matches_unvalidated_run(self):
        """An always-true validator must not perturb the rng stream."""
        baseline = self._search(None).run(5)
        validated = self._search(lambda g: True).run(5)
        assert validated.best == baseline.best
        assert validated.best_score == baseline.best_score
        assert validated.rejections == 0

    def test_unsatisfiable_validator_raises(self):
        search = self._search(lambda g: False)
        with pytest.raises(RuntimeError, match="no valid genotype"):
            search.run(1)

    @staticmethod
    def _hgnas(config: HGNASConfig) -> HGNAS:
        class _UnitLatency:
            def evaluate(self, architecture) -> float:
                return 1.0

        return HGNAS(config, None, None, _UnitLatency())

    def test_hgnas_validator_rejects_knn_for_single_point_scenario(self):
        config = HGNASConfig(num_positions=6, deploy_num_points=1)
        search = self._hgnas(config)
        validate = search._architecture_validator()
        functions = FunctionSet(sample_method="knn")
        knn_arch = Architecture(
            operations=(OperationType.SAMPLE, OperationType.AGGREGATE) * 2,
            upper_functions=functions,
            lower_functions=functions,
        )
        random_arch = Architecture(
            operations=(OperationType.SAMPLE, OperationType.AGGREGATE) * 2,
            upper_functions=functions.replace(sample_method="random"),
            lower_functions=functions.replace(sample_method="random"),
        )
        assert not validate(knn_arch)
        assert validate(random_arch)
        disabled = self._hgnas(HGNASConfig(num_positions=6, validate_candidates=False))
        assert disabled._architecture_validator() is None


# ---------------------------------------------------------------------- #
# Registry / serving wiring: signature cache
# ---------------------------------------------------------------------- #
class TestSignatureCache:
    def test_register_computes_and_persists_signature(self, tmp_path):
        registry = ModelRegistry()
        entry = registry.register(
            "m", dgcnn_architecture(), get_device("jetson-tx2"), num_classes=4, k=8
        )
        assert entry.signature is not None
        assert entry.signature.k == 8 and entry.signature.num_classes == 4
        registry.save(tmp_path)
        loaded = ModelRegistry.load(tmp_path)
        assert loaded.get("m").signature == entry.signature

    def test_engine_rejects_unservable_requests_via_signature(self):
        registry = ModelRegistry()
        registry.register("m", dgcnn_architecture(), get_device("jetson-tx2"), num_classes=4)
        engine = InferenceEngine(registry)
        with pytest.raises(ValueError, match="at least 2"):
            engine.submit("m", np.zeros((1, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="point features"):
            engine.submit("m", np.zeros((8, 5), dtype=np.float32))

    def test_deploy_refuses_statically_invalid_scenario(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="static validation"):
            registry.register(
                "m", dgcnn_architecture(), get_device("jetson-tx2"), num_classes=4, embed_dim=1
            )

    def test_deploy_refuses_inconsistent_model(self):
        registry = ModelRegistry()
        architecture = dgcnn_architecture()
        functions = FunctionSet(sample_method="random", message_type="distance")
        other = Architecture(
            operations=(OperationType.SAMPLE, OperationType.AGGREGATE, OperationType.COMBINE),
            upper_functions=functions,
            lower_functions=functions,
        )
        wrong_model = DerivedModel(other, num_classes=4, k=10)
        with pytest.raises(ValueError, match="inconsistent"):
            registry.register(
                "m",
                architecture,
                get_device("jetson-tx2"),
                num_classes=4,
                k=10,
                model=wrong_model,
            )

    def test_adopted_entry_gains_signature(self):
        registry = ModelRegistry()
        entry = registry.register("m", dgcnn_architecture(), get_device("jetson-tx2"), num_classes=4)
        stripped = entry
        stripped.signature = None
        other = ModelRegistry()
        adopted = other.add(stripped)
        assert adopted.signature is not None


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestAnalysisCli:
    def test_lint_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out

    def test_lint_clean_repo_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "no lint violations" in capsys.readouterr().out

    def test_lint_violations_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert cli_main(["lint", str(bad)]) == 1
        assert "rng-discipline" in capsys.readouterr().out

    def test_lint_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert cli_main(["lint", str(bad), "--rule", "dtype-literal"]) == 0
        assert cli_main(["lint", str(bad), "--rule", "no-such-rule"]) == 2

    def test_check_preset_ok(self, capsys):
        assert cli_main(["check", "fast", "--num-points", "1024"]) == 0
        out = capsys.readouterr().out
        assert "genotype OK" in out and "logits" in out

    def test_check_invalid_scenario_exits_one(self, capsys):
        assert cli_main(["check", "dgcnn", "--num-points", "1"]) == 1
        assert "knn-single-point" in capsys.readouterr().out

    def test_check_genotype_file(self, tmp_path, capsys):
        path = tmp_path / "genotype.json"
        path.write_text(json.dumps(dgcnn_architecture().to_dict()))
        assert cli_main(["check", str(path)]) == 0
        bad = dgcnn_architecture().to_dict()
        bad["operations"][0] = "pool"
        path.write_text(json.dumps(bad))
        assert cli_main(["check", str(path)]) == 1
        assert "unknown-operation" in capsys.readouterr().out

    def test_check_unknown_argument_errors(self, capsys):
        assert cli_main(["check", "no-such-preset-or-file"]) == 2
