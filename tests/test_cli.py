"""Smoke tests for the unified ``repro`` CLI and the ``repro-serve`` alias."""

import pytest

from repro.cli import main as cli_main
from repro.serving import cli as legacy_cli


class TestDevicesCommand:
    def test_lists_registered_devices(self, capsys):
        assert cli_main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("rtx3080", "i7-8700k", "jetson-tx2", "raspberry-pi"):
            assert name in out
        assert "oracle" in out and "predictor" in out


class TestProfileCommand:
    def test_profiles_preset(self, capsys):
        assert cli_main(["profile", "--device", "pi", "--arch", "fast"]) == 0
        out = capsys.readouterr().out
        assert "Raspberry Pi" in out
        assert "total latency" in out
        assert "aggregate" in out

    def test_scenario_overrides(self, capsys):
        assert cli_main(["profile", "--device", "gpu", "--arch", "dgcnn", "--num-points", "256", "--k", "8"]) == 0
        assert "Nvidia RTX3080" in capsys.readouterr().out


class TestPredictCommand:
    def test_trains_then_hits_cache(self, tmp_path, capsys):
        argv = ["predict", "--device", "gpu", "--num-samples", "30", "--epochs", "3", "--root", str(tmp_path)]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hits, 1 misses" in first
        assert cli_main(argv) == 0
        second = capsys.readouterr().out
        assert "1 hits, 0 misses" in second


class TestSearchCommand:
    def test_tiny_search_runs_and_caches(self, tmp_path, capsys):
        argv = [
            "search",
            "--device",
            "tx2",
            "--root",
            str(tmp_path),
            "--num-positions",
            "6",
            "--population",
            "4",
            "--function-iterations",
            "1",
            "--operation-iterations",
            "2",
            "--classes",
            "4",
            "--samples-per-class",
            "4",
            "--points",
            "24",
        ]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "objective score" in first
        assert "0 hits, 1 misses" in first
        assert cli_main(argv) == 0
        assert "1 hits, 0 misses" in capsys.readouterr().out


class TestServeCommand:
    def test_serves_stream(self, capsys):
        assert cli_main(["serve", "--requests", "8", "--device", "tx2"]) == 0
        out = capsys.readouterr().out
        assert "served 8 requests" in out
        assert "serving telemetry" in out

    def test_unknown_device_is_exit_2(self, capsys):
        assert cli_main(["serve", "--device", "abacus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_slo_rejection_is_exit_2(self, capsys):
        assert cli_main(["serve", "--device", "pi", "--requests", "2", "--slo-ms", "0.0001"]) == 2
        assert "error" in capsys.readouterr().err


class TestLegacyServeAlias:
    def test_forwards_with_deprecation_notice(self, capsys):
        assert legacy_cli.main(["--requests", "4"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "repro serve" in captured.err
        assert "served 4 requests" in captured.out

    def test_parser_keeps_serve_flags(self):
        parser = legacy_cli.build_parser()
        args = parser.parse_args(["--requests", "5", "--device", "pi"])
        assert args.requests == 5
        assert args.device == "pi"


class TestEntryPoints:
    def test_console_scripts_point_at_cli(self):
        import pathlib
        import tomllib

        data = tomllib.loads((pathlib.Path(__file__).parents[1] / "pyproject.toml").read_text())
        scripts = data["project"]["scripts"]
        assert scripts["repro"] == "repro.cli:main"
        assert scripts["repro-serve"] == "repro.serving.cli:main"

    def test_missing_subcommand_exits_with_usage(self):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([])
        assert excinfo.value.code == 2
