"""Tests for the GNN models: EdgeConv, DGCNN, baselines, dense GCN, head."""

import numpy as np
import pytest

from repro.data import collate
from repro.models import (
    DGCNN,
    ClassificationHead,
    DGCNNConfig,
    DenseGCN,
    DenseGCNLayer,
    EdgeConv,
    GraphReuseDGCNN,
    SimplifiedDGCNN,
    SimplifiedDGCNNConfig,
    model_size_mb,
)
from repro.nn import Tensor, cross_entropy
from repro.nn.optim import Adam


def _batch(dataset, count=4):
    return collate([dataset[i] for i in range(count)])


class TestEdgeConv:
    def test_output_shape(self, rng):
        conv = EdgeConv(3, 8, rng=rng)
        x = Tensor(rng.normal(size=(10, 3)))
        ei = np.array([[1, 2, 3, 4], [0, 0, 1, 1]])
        assert conv(x, ei).shape == (10, 8)

    def test_input_dim_check(self, rng):
        conv = EdgeConv(3, 8, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(5, 4))), np.array([[0], [1]]))

    def test_invalid_aggregator_or_message(self):
        with pytest.raises(ValueError):
            EdgeConv(3, 8, aggregator="median")
        with pytest.raises(ValueError):
            EdgeConv(3, 8, message_type="bogus")

    def test_gradients_flow_to_mlp(self, rng):
        conv = EdgeConv(3, 4, rng=rng)
        x = Tensor(rng.normal(size=(6, 3)))
        ei = np.array([[0, 1, 2], [3, 4, 5]])
        conv(x, ei).sum().backward()
        assert all(p.grad is not None for p in conv.parameters())

    def test_repr(self, rng):
        assert "EdgeConv" in repr(EdgeConv(3, 4, rng=rng))


class TestClassificationHead:
    def test_logit_shape(self, rng):
        head = ClassificationHead(8, num_classes=5, rng=rng)
        x = Tensor(rng.normal(size=(12, 8)))
        batch = np.repeat([0, 1, 2], 4)
        assert head(x, batch, 3).shape == (3, 5)

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            ClassificationHead(8, num_classes=1)

    def test_model_size(self, rng):
        head = ClassificationHead(8, num_classes=5, rng=rng)
        assert model_size_mb(head) == pytest.approx(head.num_parameters() * 4 / 2**20)


class TestDGCNN:
    def test_forward_shape(self, tiny_train):
        model = DGCNN(DGCNNConfig(num_classes=4, k=4, layer_dims=(8, 8), embed_dim=16, classifier_hidden=(16,)))
        logits = model(_batch(tiny_train))
        assert logits.shape == (4, 4)

    def test_training_reduces_loss(self, tiny_train, rng):
        model = DGCNN(DGCNNConfig(num_classes=4, k=4, layer_dims=(8, 8), embed_dim=16, classifier_hidden=(16,)))
        batch = _batch(tiny_train, 8)
        optimizer = Adam(model.parameters(), lr=0.01)
        first_loss = None
        for _ in range(8):
            loss = cross_entropy(model(batch), batch.labels)
            if first_loss is None:
                first_loss = loss.item()
            model.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss

    def test_graph_reuse_validation(self):
        with pytest.raises(ValueError):
            DGCNNConfig(layer_dims=(8, 8), graph_reuse={0: 1})
        with pytest.raises(ValueError):
            DGCNNConfig(layer_dims=(8, 8), graph_reuse={5: 0})

    def test_knn_construction_count(self):
        base = DGCNNConfig(num_classes=4, k=4, layer_dims=(8, 8, 8))
        assert DGCNN(base).count_knn_constructions() == 3
        reuse = DGCNNConfig(num_classes=4, k=4, layer_dims=(8, 8, 8), graph_reuse={1: 0, 2: 0})
        assert DGCNN(reuse).count_knn_constructions() == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DGCNNConfig(k=0)
        with pytest.raises(ValueError):
            DGCNNConfig(layer_dims=())


class TestBaselines:
    def test_graph_reuse_builds_graph_once(self):
        model = GraphReuseDGCNN(DGCNNConfig(num_classes=4, k=4, layer_dims=(8, 8, 8)))
        assert model.count_knn_constructions() == 1
        assert model.config.dynamic is False

    def test_graph_reuse_forward(self, tiny_train):
        model = GraphReuseDGCNN(DGCNNConfig(num_classes=4, k=4, layer_dims=(8, 8), embed_dim=16, classifier_hidden=(16,)))
        assert model(_batch(tiny_train)).shape == (4, 4)

    def test_simplified_forward_and_counts(self, tiny_train):
        model = SimplifiedDGCNN(
            SimplifiedDGCNNConfig(num_classes=4, k=4, full_layer_dims=(8,), simple_layer_dims=(8,), embed_dim=16, classifier_hidden=(16,))
        )
        assert model(_batch(tiny_train)).shape == (4, 4)
        assert model.count_knn_constructions() == 1
        assert model.num_layers == 2

    def test_simplified_invalid_config(self):
        with pytest.raises(ValueError):
            SimplifiedDGCNNConfig(full_layer_dims=())
        with pytest.raises(ValueError):
            SimplifiedDGCNNConfig(k=0)

    def test_simplified_is_smaller_than_dgcnn(self):
        dgcnn = DGCNN(DGCNNConfig(num_classes=10, k=4, layer_dims=(16, 16, 32)))
        simplified = SimplifiedDGCNN(
            SimplifiedDGCNNConfig(num_classes=10, k=4, full_layer_dims=(16, 16), simple_layer_dims=(32,))
        )
        assert simplified.num_parameters() < dgcnn.num_parameters()


class TestDenseGCN:
    def test_layer_shapes(self, rng):
        layer = DenseGCNLayer(4, 6, rng=rng)
        adj = np.eye(5)
        out = layer(Tensor(rng.normal(size=(5, 4))), adj)
        assert out.shape == (5, 6)

    def test_adjacency_shape_check(self, rng):
        layer = DenseGCNLayer(4, 6, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(rng.normal(size=(5, 4))), np.eye(4))

    def test_stack(self, rng):
        gcn = DenseGCN((4, 8, 2), rng=rng)
        out = gcn(Tensor(rng.normal(size=(6, 4))), np.eye(6))
        assert out.shape == (6, 2)

    def test_invalid_configs(self, rng):
        with pytest.raises(ValueError):
            DenseGCN((4,))
        with pytest.raises(ValueError):
            DenseGCNLayer(3, 4, activation="gelu")

    def test_aggregation_effect(self, rng):
        layer = DenseGCNLayer(2, 2, activation="none", rng=rng)
        x = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        identity_out = layer(x, np.eye(2)).data
        sum_out = layer(x, np.ones((2, 2))).data
        assert not np.allclose(identity_out, sum_out)
