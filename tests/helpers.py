"""Test helpers shared across modules."""

from __future__ import annotations

import numpy as np


def finite_difference_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad
