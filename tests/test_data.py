"""Tests for the synthetic dataset, transforms, loaders and splits."""

import numpy as np
import pytest

from repro.data import (
    Compose,
    DataLoader,
    InMemoryDataset,
    PointCloudSample,
    SyntheticModelNet,
    SyntheticModelNetConfig,
    collate,
    generate_shape,
    list_shape_names,
    make_synthetic_modelnet,
    normalize_unit_sphere,
    random_jitter,
    random_point_dropout,
    random_rotate_z,
    random_scale,
    stratified_split,
    train_val_test_split,
)


class TestShapes:
    def test_forty_classes(self):
        assert len(list_shape_names()) == 40
        assert len(set(list_shape_names())) == 40

    @pytest.mark.parametrize("name", list_shape_names())
    def test_every_shape_generates(self, name, rng):
        pts = generate_shape(name, 64, rng)
        assert pts.shape == (64, 3)
        assert np.all(np.isfinite(pts))

    def test_shapes_are_distinct(self, rng):
        sphere = generate_shape("sphere", 256, rng)
        plane = generate_shape("plane", 256, rng)
        assert abs(np.linalg.norm(sphere, axis=1).std() - np.linalg.norm(plane, axis=1).std()) > 0.01

    def test_unknown_shape(self, rng):
        with pytest.raises(KeyError):
            generate_shape("dragon", 32, rng)

    def test_invalid_num_points(self, rng):
        with pytest.raises(ValueError):
            generate_shape("sphere", 0, rng)

    def test_reproducible(self):
        a = generate_shape("torus", 50, np.random.default_rng(3))
        b = generate_shape("torus", 50, np.random.default_rng(3))
        np.testing.assert_allclose(a, b)


class TestTransforms:
    def test_normalize_unit_sphere(self, rng):
        pts = rng.normal(size=(50, 3)) * 7 + 3
        out = normalize_unit_sphere(pts)
        assert np.linalg.norm(out, axis=1).max() == pytest.approx(1.0)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_rotation_preserves_norms_and_z(self, rng):
        pts = rng.normal(size=(30, 3))
        rotated = random_rotate_z(pts, rng)
        np.testing.assert_allclose(np.linalg.norm(rotated, axis=1), np.linalg.norm(pts, axis=1))
        np.testing.assert_allclose(rotated[:, 2], pts[:, 2])

    def test_jitter_bounded(self, rng):
        pts = np.zeros((100, 3))
        out = random_jitter(pts, rng, sigma=0.01, clip=0.02)
        assert np.abs(out).max() <= 0.02 + 1e-12

    def test_scale_range(self, rng):
        pts = np.ones((10, 3))
        out = random_scale(pts, rng, low=0.5, high=2.0)
        factor = out[0, 0]
        assert 0.5 <= factor <= 2.0
        with pytest.raises(ValueError):
            random_scale(pts, rng, low=-1, high=0.5)

    def test_point_dropout(self, rng):
        pts = rng.normal(size=(100, 3))
        out = random_point_dropout(pts, rng, max_dropout=0.9)
        assert out.shape == pts.shape

    def test_compose(self, rng):
        pipeline = Compose([random_rotate_z, normalize_unit_sphere])
        out = pipeline(rng.normal(size=(20, 3)), rng)
        assert len(pipeline) == 2
        assert np.linalg.norm(out, axis=1).max() <= 1.0 + 1e-9

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            normalize_unit_sphere(rng.normal(size=(5, 2)))


class TestDatasetContainers:
    def test_sample_validation(self):
        with pytest.raises(ValueError):
            PointCloudSample(points=np.zeros((4, 2)), label=0)

    def test_collate_offsets(self, rng):
        samples = [PointCloudSample(rng.normal(size=(5, 3)), label=i) for i in range(3)]
        batch = collate(samples)
        assert batch.num_points == 15
        assert batch.num_graphs == 3
        np.testing.assert_array_equal(batch.labels, [0, 1, 2])
        assert [len(s) for s in batch.graph_slices()] == [5, 5, 5]

    def test_collate_empty(self):
        with pytest.raises(ValueError):
            collate([])

    def test_dataset_label_range(self, rng):
        sample = PointCloudSample(rng.normal(size=(4, 3)), label=7)
        with pytest.raises(ValueError):
            InMemoryDataset([sample], num_classes=3)

    def test_loader_batches(self, rng):
        samples = [PointCloudSample(rng.normal(size=(4, 3)), label=i % 2) for i in range(10)]
        dataset = InMemoryDataset(samples, num_classes=2)
        loader = DataLoader(dataset, batch_size=4)
        batches = list(loader)
        assert len(loader) == 3
        assert [b.num_graphs for b in batches] == [4, 4, 2]

    def test_loader_drop_last_and_shuffle(self, rng):
        samples = [PointCloudSample(rng.normal(size=(4, 3)), label=0) for _ in range(10)]
        dataset = InMemoryDataset(samples, num_classes=1)
        loader = DataLoader(dataset, batch_size=4, drop_last=True, shuffle=True, rng=rng)
        assert len(loader) == 2
        assert sum(b.num_graphs for b in loader) == 8


class TestSyntheticModelNet:
    def test_make_dataset_sizes(self):
        train, test = make_synthetic_modelnet(num_classes=6, samples_per_class=3, num_points=16)
        assert len(train) == 18 and len(test) == 18
        assert train.num_classes == 6
        assert sorted(np.unique(train.labels())) == list(range(6))

    def test_points_normalised(self):
        train, _ = make_synthetic_modelnet(num_classes=3, samples_per_class=2, num_points=32)
        for sample in train:
            assert np.linalg.norm(sample.points, axis=1).max() <= 1.0 + 1e-9

    def test_splits_are_disjoint_but_reproducible(self):
        config = SyntheticModelNetConfig(num_classes=3, samples_per_class=2, num_points=16, seed=1)
        gen = SyntheticModelNet(config)
        train_a = gen.generate_split("train")
        train_b = gen.generate_split("train")
        test = gen.generate_split("test")
        np.testing.assert_allclose(train_a[0].points, train_b[0].points)
        assert not np.allclose(train_a[0].points, test[0].points)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticModelNetConfig(num_classes=0)
        with pytest.raises(ValueError):
            SyntheticModelNetConfig(num_classes=50)
        with pytest.raises(ValueError):
            SyntheticModelNet(SyntheticModelNetConfig()).generate_split("validation")


class TestSplits:
    def _dataset(self, rng, per_class=6, classes=3):
        samples = [
            PointCloudSample(rng.normal(size=(4, 3)), label=c)
            for c in range(classes)
            for _ in range(per_class)
        ]
        return InMemoryDataset(samples, num_classes=classes)

    def test_stratified_fractions(self, rng):
        dataset = self._dataset(rng)
        parts = stratified_split(dataset, (0.5, 0.5), rng)
        assert [len(p) for p in parts] == [9, 9]
        for part in parts:
            counts = np.bincount(part.labels(), minlength=3)
            assert np.all(counts == 3)

    def test_stratified_validation(self, rng):
        dataset = self._dataset(rng)
        with pytest.raises(ValueError):
            stratified_split(dataset, (0.5, 0.4), rng)
        with pytest.raises(ValueError):
            stratified_split(dataset, (1.2, -0.2), rng)

    def test_train_val_test_split(self, rng):
        dataset = self._dataset(rng, per_class=10)
        train, val, test = train_val_test_split(dataset, 0.2, 0.2, rng)
        assert len(train) + len(val) + len(test) == len(dataset)
        assert len(train) > len(val)
