"""Tests for the autograd engine: forward values and gradients."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concatenate, maximum, no_grad, stack, where

from helpers import finite_difference_grad


def assert_grad_matches(build_fn, shape, rng, rtol=1e-5, atol=1e-7):
    """Compare autograd gradient against central finite differences."""
    x0 = rng.normal(size=shape)

    def numeric(x):
        return float(build_fn(Tensor(x, requires_grad=False)).data.sum())

    x = Tensor(x0.copy(), requires_grad=True)
    out = build_fn(x)
    out.sum().backward()
    expected = finite_difference_grad(numeric, x0.copy())
    np.testing.assert_allclose(x.grad, expected, rtol=rtol, atol=atol)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3))
        np.testing.assert_allclose((a + b).data, 1 + np.arange(3) * np.ones((2, 3)))

    def test_scalar_ops(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_allclose((2 * t + 1).data, [3.0, 5.0])
        np.testing.assert_allclose((1 - t).data, [0.0, -1.0])
        np.testing.assert_allclose((t / 2).data, [0.5, 1.0])
        np.testing.assert_allclose((2 / t).data, [2.0, 1.0])

    def test_matmul(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        b = np.random.default_rng(1).normal(size=(4, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_reductions(self):
        data = np.arange(6.0).reshape(2, 3)
        t = Tensor(data)
        assert t.sum().item() == pytest.approx(15.0)
        np.testing.assert_allclose(t.mean(axis=0).data, data.mean(axis=0))
        np.testing.assert_allclose(t.max(axis=1).data, data.max(axis=1))
        np.testing.assert_allclose(t.min(axis=1).data, data.min(axis=1))

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape(2, 3).T.shape == (3, 2)

    def test_getitem_fancy(self):
        t = Tensor(np.arange(10.0))
        np.testing.assert_allclose(t[np.array([1, 3, 5])].data, [1.0, 3.0, 5.0])

    def test_elementwise_functions(self):
        t = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(t.relu().data, [0.0, 0.0, 2.0])
        np.testing.assert_allclose(t.abs().data, [1.0, 0.0, 2.0])
        np.testing.assert_allclose(t.leaky_relu(0.1).data, [-0.1, 0.0, 2.0])
        np.testing.assert_allclose(t.clip(-0.5, 1.0).data, [-0.5, 0.0, 1.0])

    def test_concatenate_and_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 2)))
        assert concatenate([a, b], axis=1).shape == (2, 4)
        assert stack([a, b], axis=0).shape == (2, 2, 2)

    def test_where_and_maximum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([4.0, 2.0])
        np.testing.assert_allclose(maximum(a, b).data, [4.0, 5.0])
        np.testing.assert_allclose(where(np.array([True, False]), a, b).data, [1.0, 2.0])

    def test_repr_and_item(self):
        t = Tensor([[3.0]])
        assert "shape" in repr(t)
        assert t.item() == pytest.approx(3.0)

    def test_detach_and_copy(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad
        copy = t.copy()
        copy.data[0] = 9.0
        assert t.data[0] == 1.0


class TestBackward:
    def test_add_mul_chain(self, rng):
        assert_grad_matches(lambda x: (x * 3.0 + 1.0) * x, (4,), rng)

    def test_broadcast_grad(self, rng):
        b0 = rng.normal(size=(3,))

        def build(x):
            return x * Tensor(b0)

        assert_grad_matches(build, (2, 3), rng)

    def test_matmul_grad(self, rng):
        w = rng.normal(size=(4, 2))
        assert_grad_matches(lambda x: x @ Tensor(w), (3, 4), rng)

    def test_division_grad(self, rng):
        assert_grad_matches(lambda x: x / (x * x + 2.0), (5,), rng)

    def test_pow_sqrt_grad(self, rng):
        assert_grad_matches(lambda x: (x * x + 1.0).sqrt(), (4,), rng)

    def test_exp_log_grad(self, rng):
        assert_grad_matches(lambda x: (x.exp() + 1.0).log(), (4,), rng)

    def test_reduction_grads(self, rng):
        assert_grad_matches(lambda x: x.mean(axis=0), (3, 4), rng)
        assert_grad_matches(lambda x: x.sum(axis=1, keepdims=True) * 2.0, (3, 4), rng)

    def test_max_grad(self, rng):
        assert_grad_matches(lambda x: x.max(axis=1), (3, 5), rng)

    def test_sigmoid_tanh_grad(self, rng):
        assert_grad_matches(lambda x: x.sigmoid() + x.tanh(), (6,), rng)

    def test_getitem_grad(self, rng):
        idx = np.array([0, 2, 2])

        def build(x):
            return x[idx] * 2.0

        assert_grad_matches(build, (4, 3), rng)

    def test_concatenate_grad(self, rng):
        def build(x):
            return concatenate([x, x * 2.0], axis=1)

        assert_grad_matches(build, (2, 3), rng)

    def test_transpose_reshape_grad(self, rng):
        assert_grad_matches(lambda x: x.T.reshape(6) * 3.0, (2, 3), rng)

    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()
        (x * 2.0).backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestGradMode:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (x * 2.0).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)
