"""Tests for the autograd engine: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import init
from repro.nn.dtype import (
    as_float_array,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.nn.layers import Linear
from repro.nn.loss import cross_entropy, huber_loss, mae_loss, mape_loss, mse_loss
from repro.nn.tensor import (
    Tensor,
    apply_op,
    as_tensor,
    concatenate,
    maximum,
    no_grad,
    stack,
    where,
)

from helpers import finite_difference_grad


def assert_grad_matches(build_fn, shape, rng, rtol=1e-5, atol=1e-7):
    """Compare autograd gradient against central finite differences."""
    x0 = rng.normal(size=shape)

    def numeric(x):
        return float(build_fn(Tensor(x, requires_grad=False)).data.sum())

    x = Tensor(x0.copy(), requires_grad=True)
    out = build_fn(x)
    out.sum().backward()
    expected = finite_difference_grad(numeric, x0.copy())
    np.testing.assert_allclose(x.grad, expected, rtol=rtol, atol=atol)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3))
        np.testing.assert_allclose((a + b).data, 1 + np.arange(3) * np.ones((2, 3)))

    def test_scalar_ops(self):
        t = Tensor([1.0, 2.0])
        np.testing.assert_allclose((2 * t + 1).data, [3.0, 5.0])
        np.testing.assert_allclose((1 - t).data, [0.0, -1.0])
        np.testing.assert_allclose((t / 2).data, [0.5, 1.0])
        np.testing.assert_allclose((2 / t).data, [2.0, 1.0])

    def test_matmul(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        b = np.random.default_rng(1).normal(size=(4, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_reductions(self):
        data = np.arange(6.0).reshape(2, 3)
        t = Tensor(data)
        assert t.sum().item() == pytest.approx(15.0)
        np.testing.assert_allclose(t.mean(axis=0).data, data.mean(axis=0))
        np.testing.assert_allclose(t.max(axis=1).data, data.max(axis=1))
        np.testing.assert_allclose(t.min(axis=1).data, data.min(axis=1))

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape(2, 3).T.shape == (3, 2)

    def test_getitem_fancy(self):
        t = Tensor(np.arange(10.0))
        np.testing.assert_allclose(t[np.array([1, 3, 5])].data, [1.0, 3.0, 5.0])

    def test_elementwise_functions(self):
        t = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(t.relu().data, [0.0, 0.0, 2.0])
        np.testing.assert_allclose(t.abs().data, [1.0, 0.0, 2.0])
        np.testing.assert_allclose(t.leaky_relu(0.1).data, [-0.1, 0.0, 2.0])
        np.testing.assert_allclose(t.clip(-0.5, 1.0).data, [-0.5, 0.0, 1.0])

    def test_concatenate_and_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 2)))
        assert concatenate([a, b], axis=1).shape == (2, 4)
        assert stack([a, b], axis=0).shape == (2, 2, 2)

    def test_where_and_maximum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([4.0, 2.0])
        np.testing.assert_allclose(maximum(a, b).data, [4.0, 5.0])
        np.testing.assert_allclose(where(np.array([True, False]), a, b).data, [1.0, 2.0])

    def test_repr_and_item(self):
        t = Tensor([[3.0]])
        assert "shape" in repr(t)
        assert t.item() == pytest.approx(3.0)

    def test_detach_and_copy(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad
        copy = t.copy()
        copy.data[0] = 9.0
        assert t.data[0] == 1.0


class TestBackward:
    def test_add_mul_chain(self, rng):
        assert_grad_matches(lambda x: (x * 3.0 + 1.0) * x, (4,), rng)

    def test_broadcast_grad(self, rng):
        b0 = rng.normal(size=(3,))

        def build(x):
            return x * Tensor(b0)

        assert_grad_matches(build, (2, 3), rng)

    def test_matmul_grad(self, rng):
        w = rng.normal(size=(4, 2))
        assert_grad_matches(lambda x: x @ Tensor(w), (3, 4), rng)

    def test_division_grad(self, rng):
        assert_grad_matches(lambda x: x / (x * x + 2.0), (5,), rng)

    def test_pow_sqrt_grad(self, rng):
        assert_grad_matches(lambda x: (x * x + 1.0).sqrt(), (4,), rng)

    def test_exp_log_grad(self, rng):
        assert_grad_matches(lambda x: (x.exp() + 1.0).log(), (4,), rng)

    def test_reduction_grads(self, rng):
        assert_grad_matches(lambda x: x.mean(axis=0), (3, 4), rng)
        assert_grad_matches(lambda x: x.sum(axis=1, keepdims=True) * 2.0, (3, 4), rng)

    def test_max_grad(self, rng):
        assert_grad_matches(lambda x: x.max(axis=1), (3, 5), rng)

    def test_sigmoid_tanh_grad(self, rng):
        assert_grad_matches(lambda x: x.sigmoid() + x.tanh(), (6,), rng)

    def test_getitem_grad(self, rng):
        idx = np.array([0, 2, 2])

        def build(x):
            return x[idx] * 2.0

        assert_grad_matches(build, (4, 3), rng)

    def test_concatenate_grad(self, rng):
        def build(x):
            return concatenate([x, x * 2.0], axis=1)

        assert_grad_matches(build, (2, 3), rng)

    def test_transpose_reshape_grad(self, rng):
        assert_grad_matches(lambda x: x.T.reshape(6) * 3.0, (2, 3), rng)

    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()
        (x * 2.0).backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestGradMode:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (x * 2.0).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestDtypePolicy:
    """The float32-default dtype policy of repro.nn.dtype (PR 5)."""

    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32

    def test_fresh_data_uses_default(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32
        assert Tensor(3).dtype == np.float32
        assert Tensor(np.arange(4)).dtype == np.float32
        assert Tensor(np.ones(3, dtype=bool)).dtype == np.float32

    def test_float_arrays_keep_their_dtype(self):
        assert Tensor(np.ones(3, dtype=np.float64)).dtype == np.float64
        assert Tensor(np.ones(3, dtype=np.float32)).dtype == np.float32

    def test_explicit_dtype_wins(self):
        assert Tensor(np.ones(3, dtype=np.float64), dtype="float32").dtype == np.float32

    def test_context_manager_scopes_the_default(self):
        with default_dtype("float64"):
            assert Tensor([1.0]).dtype == np.float64
            assert Tensor(init.zeros((2,))).dtype == np.float64
        assert Tensor([1.0]).dtype == np.float32

    def test_set_default_dtype_round_trip(self):
        set_default_dtype("float64")
        try:
            assert get_default_dtype() == np.float64
        finally:
            set_default_dtype("float32")

    def test_non_float_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype("int64")
        with pytest.raises(ValueError):
            default_dtype("int32").__enter__()

    def test_as_float_array_no_copy_for_floats(self):
        arr = np.ones(3, dtype=np.float32)
        assert as_float_array(arr) is arr


def _unary_ops():
    return {
        "add": lambda x: x + 1.5,
        "mul": lambda x: x * 2.0,
        "div": lambda x: x / 3.0,
        "rdiv": lambda x: 2.0 / (x + 3.0),
        "pow": lambda x: (x + 3.0) ** 2,
        "matmul": lambda x: x @ Tensor(np.ones((3, 2), dtype=np.float32)),
        "sum": lambda x: x.sum(axis=0),
        "mean": lambda x: x.mean(axis=1),
        "max": lambda x: x.max(axis=0),
        "min": lambda x: x.min(axis=1),
        "reshape": lambda x: x.reshape(-1),
        "transpose": lambda x: x.T,
        "getitem": lambda x: x[np.array([0, 1, 1])],
        "exp": lambda x: x.exp(),
        "log": lambda x: (x + 3.0).log(),
        "abs": lambda x: x.abs(),
        "sqrt": lambda x: (x + 3.0).sqrt(),
        "relu": lambda x: F.relu(x),
        "leaky_relu": lambda x: F.leaky_relu(x, 0.2),
        "sigmoid": lambda x: F.sigmoid(x),
        "tanh": lambda x: F.tanh(x),
        "softmax": lambda x: F.softmax(x),
        "log_softmax": lambda x: F.log_softmax(x),
        "dropout": lambda x: F.dropout(x, 0.5, np.random.default_rng(0)),
        "linear": lambda x: F.linear(
            x, Tensor(np.ones((3, 4), dtype=np.float32)), Tensor(np.zeros(4, dtype=np.float32))
        ),
        "clip": lambda x: x.clip(-0.5, 0.5),
        "concatenate": lambda x: concatenate([x, x * 2.0], axis=0),
        "stack": lambda x: stack([x, x], axis=0),
        "where": lambda x: where(np.ones(x.shape, dtype=bool), x, x * 2.0),
        "maximum": lambda x: maximum(x, x * 0.5),
    }


class TestDtypePropagation:
    """Every nn op preserves float32 end to end, forward and backward."""

    @pytest.mark.parametrize("name", sorted(_unary_ops()))
    def test_op_preserves_float32(self, name, rng):
        op = _unary_ops()[name]
        x = Tensor(rng.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        out = op(x)
        assert out.dtype == np.float32, f"{name} forward upcast to {out.dtype}"
        out.sum().backward()
        assert x.grad is not None and x.grad.dtype == np.float32, f"{name} grad dtype"

    def test_backward_seed_follows_tensor_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2.0).backward(np.ones(3, dtype=np.float64))
        assert x.grad.dtype == np.float32

    def test_apply_op_preserves_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = apply_op(x.data * 2.0, (x,), lambda grad: [np.asarray(grad, dtype=np.float64) * 2.0])
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_losses_preserve_float32(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)).astype(np.float32), requires_grad=True)
        targets = np.array([0, 1, 2, 1])
        loss = cross_entropy(logits, targets)
        assert loss.dtype == np.float32
        loss.backward()
        assert logits.grad.dtype == np.float32
        pred = Tensor(rng.normal(size=(5,)).astype(np.float32), requires_grad=True)
        target = Tensor(rng.normal(size=(5,)).astype(np.float32))
        for loss_fn in (mse_loss, mae_loss, mape_loss, huber_loss):
            value = loss_fn(pred, target)
            assert value.dtype == np.float32, loss_fn.__name__

    def test_modules_initialise_in_default_dtype(self):
        layer = Linear(3, 4, rng=np.random.default_rng(0))
        assert layer.weight.dtype == np.float32 and layer.bias.dtype == np.float32
        out = layer(Tensor(np.ones((2, 3), dtype=np.float32)))
        assert out.dtype == np.float32
        with default_dtype("float64"):
            wide = Linear(3, 4, rng=np.random.default_rng(0))
        assert wide.weight.dtype == np.float64

    def test_state_dict_round_trip_keeps_param_dtype(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        state = {name: value.astype(np.float64) for name, value in layer.state_dict().items()}
        layer.load_state_dict(state)
        assert layer.weight.data.dtype == np.float32
