"""Tests for the inference-serving subsystem (repro.serving)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.hardware.device import get_device
from repro.nas.presets import device_fast_architecture, tx2_fast_architecture
from repro.serving import (
    AdmissionError,
    BatcherConfig,
    CachingGraphBuilder,
    EngineConfig,
    InferenceEngine,
    LRUCache,
    MicroBatcher,
    ModelRegistry,
    QueuedRequest,
    cloud_fingerprint,
)
from repro.serving.telemetry import ModelTelemetry


def _make_registry(name="model", device="raspberry-pi", num_classes=6, k=6, slo_ms=None):
    registry = ModelRegistry()
    registry.register(
        name,
        device_fast_architecture(device),
        get_device(device),
        num_classes=num_classes,
        k=k,
        slo_ms=slo_ms,
    )
    return registry


def _clouds(rng, count, num_points=20):
    return [rng.standard_normal((num_points, 3)) for _ in range(count)]


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh 'a'; 'b' becomes the eviction candidate
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestCloudFingerprint:
    def test_stable_under_sub_precision_jitter(self, rng):
        points = rng.standard_normal((16, 3))
        jittered = points + rng.uniform(-1e-9, 1e-9, points.shape)
        assert cloud_fingerprint(points, decimals=6) == cloud_fingerprint(jittered, decimals=6)

    def test_sensitive_to_real_differences(self, rng):
        points = rng.standard_normal((16, 3))
        assert cloud_fingerprint(points) != cloud_fingerprint(points + 0.01)
        assert cloud_fingerprint(points) != cloud_fingerprint(points[:-1])

    def test_extra_context_changes_key(self, rng):
        points = rng.standard_normal((16, 3))
        assert cloud_fingerprint(points, extra=("knn", 8)) != cloud_fingerprint(points, extra=("knn", 12))


class TestCachingGraphBuilder:
    def test_matches_uncached_and_counts_hits(self, rng):
        from repro.graph.batching import pack_clouds

        clouds = _clouds(rng, 3, num_points=12)
        points, batch = pack_clouds(clouds)
        cache = LRUCache(16)
        cached_builder = CachingGraphBuilder(cache)
        plain_builder = CachingGraphBuilder(None)
        first = cached_builder("knn", points, batch, 4)
        again = cached_builder("knn", points, batch, 4)
        plain = plain_builder("knn", points, batch, 4)
        assert np.array_equal(first, again)
        assert np.array_equal(first, plain)
        assert cache.stats().hits == 3  # second pass hits all three clouds

    def test_random_sampling_is_deterministic_per_cloud(self, rng):
        from repro.graph.batching import pack_clouds

        clouds = _clouds(rng, 2, num_points=10)
        points, batch = pack_clouds(clouds)
        builder = CachingGraphBuilder(None)
        assert np.array_equal(builder("random", points, batch, 3), builder("random", points, batch, 3))

    def test_unknown_method_rejected(self, rng):
        builder = CachingGraphBuilder(None)
        with pytest.raises(ValueError):
            builder("fps", rng.standard_normal((5, 3)), np.zeros(5, dtype=np.int64), 2)


class TestMicroBatcher:
    def _request(self, request_id, model="m", at=0.0):
        return QueuedRequest(request_id=request_id, model=model, points=np.zeros((4, 3)), enqueued_at=at)

    def test_releases_full_batch(self):
        now = [0.0]
        batcher = MicroBatcher(BatcherConfig(max_batch_size=2, max_wait_ms=1000.0), clock=lambda: now[0])
        batcher.enqueue(self._request(0))
        assert batcher.pop_ready() is None  # not full, not timed out
        batcher.enqueue(self._request(1))
        batch = batcher.pop_ready()
        assert [r.request_id for r in batch] == [0, 1]
        assert not batcher.has_pending()

    def test_releases_on_timeout(self):
        now = [0.0]
        batcher = MicroBatcher(BatcherConfig(max_batch_size=8, max_wait_ms=5.0), clock=lambda: now[0])
        batcher.enqueue(self._request(0))
        assert batcher.pop_ready() is None
        now[0] = 0.006  # 6 ms later
        batch = batcher.pop_ready()
        assert [r.request_id for r in batch] == [0]

    def test_force_flush_and_fifo_order(self):
        batcher = MicroBatcher(BatcherConfig(max_batch_size=2, max_wait_ms=1000.0), clock=lambda: 0.0)
        for i in range(5):
            batcher.enqueue(self._request(i))
        batches = []
        while batcher.has_pending():
            batches.append([r.request_id for r in batcher.pop_ready(force=True)])
        assert batches == [[0, 1], [2, 3], [4]]

    def test_oldest_model_served_first(self):
        now = [0.0]
        batcher = MicroBatcher(BatcherConfig(max_batch_size=4, max_wait_ms=0.0), clock=lambda: now[0])
        batcher.enqueue(self._request(0, model="a", at=0.0))
        batcher.enqueue(self._request(1, model="b", at=-1.0))  # older head
        batch = batcher.pop_ready()
        assert batch[0].model == "b"
        assert batcher.depth_for("a") == 1

    def test_discard_removes_requests(self):
        batcher = MicroBatcher(BatcherConfig(max_batch_size=4, max_wait_ms=1000.0), clock=lambda: 0.0)
        for i in range(4):
            batcher.enqueue(self._request(i))
        assert batcher.discard({1, 3}) == 2
        assert [r.request_id for r in batcher.pop_ready(force=True)] == [0, 2]
        assert not batcher.has_pending()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatcherConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatcherConfig(max_wait_ms=-1.0)


class TestModelRegistry:
    def test_register_get_list_evict(self):
        registry = _make_registry("pi-fast")
        assert registry.list() == ["pi-fast"]
        assert "pi-fast" in registry and len(registry) == 1
        entry = registry.get("pi-fast")
        assert entry.device.name == "raspberry-pi"
        evicted = registry.evict("pi-fast")
        assert evicted is entry
        assert len(registry) == 0
        with pytest.raises(KeyError):
            registry.get("pi-fast")

    def test_duplicate_name_requires_replace(self):
        registry = _make_registry("m")
        with pytest.raises(ValueError):
            registry.register("m", tx2_fast_architecture(), get_device("tx2"), num_classes=4)
        registry.register("m", tx2_fast_architecture(), get_device("tx2"), num_classes=4, replace=True)
        assert registry.get("m").device.name == "jetson-tx2"

    def test_invalid_names_and_classes(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            registry.register("bad name!", tx2_fast_architecture(), get_device("tx2"), num_classes=4)
        with pytest.raises(ValueError):
            registry.register("ok", tx2_fast_architecture(), get_device("tx2"), num_classes=1)

    def test_save_load_round_trip(self, rng, tmp_path):
        registry = _make_registry("served", device="jetson-tx2", num_classes=5, k=5, slo_ms=500.0)
        registry.save(tmp_path / "reg")
        restored = ModelRegistry.load(tmp_path / "reg")
        assert restored.list() == ["served"]
        original = registry.get("served")
        loaded = restored.get("served")
        assert loaded.slo_ms == original.slo_ms
        assert loaded.device == original.device
        assert loaded.architecture.key() == original.architecture.key()
        # Same weights -> same predictions through the engine.
        clouds = _clouds(rng, 3)
        first = InferenceEngine(registry).submit_many("served", clouds)
        second = InferenceEngine(restored).submit_many("served", clouds)
        for a, b in zip(first, second):
            assert np.array_equal(a.logits, b.logits)


class TestEngineConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_batch_size": -4},
            {"max_wait_ms": -1.0},
            {"max_queue_depth": 0},
            {"result_cache_capacity": -1},
            {"edge_cache_capacity": -1},
            {"quantize_decimals": -1},
            {"telemetry_window": 0},
            {"backend": "no-such-backend"},
        ],
    )
    def test_invalid_rejected_at_construction(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            EngineConfig(**kwargs)

    def test_defaults_and_edge_values_accepted(self):
        EngineConfig()
        EngineConfig(max_wait_ms=0.0, result_cache_capacity=0, edge_cache_capacity=0)


class TestInferenceEngine:
    def test_submit_single(self, rng):
        engine = InferenceEngine(_make_registry())
        result = engine.submit("model", rng.standard_normal((16, 3)))
        assert 0 <= result.label < 6
        assert result.logits.shape == (6,)
        assert result.probabilities.shape == (6,)
        assert np.isclose(result.probabilities.sum(), 1.0)
        assert result.estimated_device_ms > 0

    def test_submit_many_matches_sequential_labels(self, rng):
        clouds = _clouds(rng, 7)
        batched = InferenceEngine(_make_registry(), EngineConfig(max_batch_size=3))
        sequential = InferenceEngine(_make_registry(), EngineConfig(max_batch_size=1))
        batched_results = batched.submit_many("model", clouds)
        sequential_results = [sequential.submit("model", cloud) for cloud in clouds]
        assert [r.label for r in batched_results] == [r.label for r in sequential_results]
        assert [r.request_id for r in batched_results] == list(range(len(clouds)))

    def test_cached_and_uncached_bit_identical(self, rng):
        clouds = _clouds(rng, 6)
        stream = clouds + [clouds[0], clouds[2]]
        cached = InferenceEngine(_make_registry(), EngineConfig(max_batch_size=4))
        uncached = InferenceEngine(
            _make_registry(),
            EngineConfig(max_batch_size=4, result_cache_capacity=0, edge_cache_capacity=0),
        )
        cached_results = cached.submit_many("model", stream)
        uncached_results = uncached.submit_many("model", stream)
        for a, b in zip(cached_results, uncached_results):
            assert np.array_equal(a.logits, b.logits)

    def test_repeated_inputs_hit_result_cache(self, rng):
        engine = InferenceEngine(_make_registry(), EngineConfig(max_batch_size=2))
        cloud = rng.standard_normal((16, 3))
        first = engine.submit("model", cloud)
        second = engine.submit("model", cloud)
        assert not first.from_cache
        assert second.from_cache
        assert np.array_equal(first.logits, second.logits)
        assert engine.result_cache.stats().hits >= 1
        # Sub-precision jitter maps onto the same cache entry.
        third = engine.submit("model", cloud + 1e-10)
        assert third.from_cache

    def test_edge_cache_reuses_knn_across_batches(self, rng):
        engine = InferenceEngine(
            _make_registry(),
            EngineConfig(max_batch_size=1, result_cache_capacity=0, edge_cache_capacity=64),
        )
        cloud = rng.standard_normal((16, 3))
        engine.submit("model", cloud)
        misses_after_first = engine.edge_cache.stats().misses
        engine.submit("model", cloud)  # result cache disabled -> recompute, edges cached
        stats = engine.edge_cache.stats()
        assert stats.hits >= 1
        assert stats.misses == misses_after_first

    def test_slo_admission_rejects(self, rng):
        registry = _make_registry(slo_ms=1e-6)
        engine = InferenceEngine(registry)
        with pytest.raises(AdmissionError):
            engine.submit("model", rng.standard_normal((64, 3)))
        assert engine.telemetry.model("model").rejected == 1

    def test_queue_capacity_rejects(self, rng):
        engine = InferenceEngine(_make_registry(), EngineConfig(max_queue_depth=2))
        with pytest.raises(AdmissionError):
            engine.submit_many("model", _clouds(rng, 4))

    def test_admission_control_can_be_disabled(self, rng):
        registry = _make_registry(slo_ms=1e-6)
        engine = InferenceEngine(registry, EngineConfig(admission_control=False))
        result = engine.submit("model", rng.standard_normal((16, 3)))
        assert result.logits.shape == (6,)

    def test_unknown_model_and_bad_input(self, rng):
        engine = InferenceEngine(_make_registry())
        with pytest.raises(KeyError):
            engine.submit("nope", rng.standard_normal((8, 3)))
        with pytest.raises(ValueError):
            engine.submit("model", np.zeros((0, 3)))
        with pytest.raises(ValueError):
            engine.submit("model", np.full((8, 3), np.nan))

    def test_wrong_feature_dim_rejected_upfront(self, rng):
        engine = InferenceEngine(_make_registry())
        with pytest.raises(ValueError, match="3-D point features"):
            engine.submit("model", rng.standard_normal((12, 2)))
        assert engine.batcher.queue_depth == 0

    def test_execution_failure_leaves_engine_clean(self, rng, monkeypatch):
        engine = InferenceEngine(_make_registry(), EngineConfig(max_batch_size=2))
        entry = engine.registry.get("model")
        calls = {"n": 0}
        original_forward = type(entry.model).forward

        def flaky_forward(self, batch):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("simulated kernel failure")
            return original_forward(self, batch)

        monkeypatch.setattr(type(entry.model), "forward", flaky_forward)
        with pytest.raises(RuntimeError, match="simulated kernel failure"):
            engine.submit_many("model", _clouds(rng, 4))  # two batches; second dies
        assert engine.batcher.queue_depth == 0
        assert engine._pending == {}

    def test_replace_does_not_serve_stale_cache(self, rng):
        engine = InferenceEngine(_make_registry())
        registry = engine.registry
        cloud = rng.standard_normal((16, 3))
        before = engine.submit("model", cloud)
        old_entry = registry.get("model")
        registry.register(
            "model",
            old_entry.architecture,
            old_entry.device,
            num_classes=old_entry.num_classes,
            k=old_entry.k,
            seed=99,  # different weights
            replace=True,
        )
        after = engine.submit("model", cloud)
        assert not after.from_cache
        assert not np.array_equal(before.logits, after.logits)

    def test_cancelled_admission_hits_not_counted_as_served(self, rng):
        registry = _make_registry(device="jetson-tx2", slo_ms=15.0)
        engine = InferenceEngine(registry)
        cloud = rng.standard_normal((16, 3))
        engine.submit("model", cloud)
        assert engine.telemetry.model("model").served == 1
        with pytest.raises(AdmissionError):
            # The repeat would be an admission-time cache hit, but the second
            # request fails admission and cancels the whole call.
            engine.submit_many("model", [cloud, rng.standard_normal((4096, 3))])
        assert engine.telemetry.model("model").served == 1

    def test_rejected_submit_many_leaves_engine_clean(self, rng):
        registry = _make_registry(device="jetson-tx2", slo_ms=15.0)
        engine = InferenceEngine(registry, EngineConfig(max_batch_size=4))
        small = [rng.standard_normal((16, 3)) for _ in range(3)]
        stream = small + [rng.standard_normal((4096, 3))]  # last one blows the SLO
        with pytest.raises(AdmissionError):
            engine.submit_many("model", stream)
        # The failed call must not leave queued requests or pending slots.
        assert engine.batcher.queue_depth == 0
        assert engine._pending == {}
        result = engine.submit("model", small[0])
        assert result.batch_size == 1  # no stale requests joined the batch

    def test_telemetry_report_structure(self, rng):
        engine = InferenceEngine(_make_registry(), EngineConfig(max_batch_size=4))
        engine.submit_many("model", _clouds(rng, 5))
        report = engine.report()
        stats = report["models"]["model"]
        assert stats["served"] == 5
        latency = stats["latency_ms"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert report["peak_queue_depth"] >= 1
        assert set(report["caches"]) == {"result", "edge"}
        assert "model" in engine.format_report()


class TestModelTelemetry:
    def test_percentiles_and_window(self):
        telemetry = ModelTelemetry(window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            telemetry.record_request(latency_ms=value, queue_ms=0.0, from_cache=False)
        # Window of 4 dropped the first sample.
        percentiles = telemetry.latency_percentiles()
        assert percentiles["p50"] >= 2.0
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        assert telemetry.served == 5

    def test_empty_percentiles_zero(self):
        telemetry = ModelTelemetry()
        assert telemetry.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert telemetry.throughput_rps == 0.0


class TestApiHelpers:
    def test_deploy_and_serve_end_to_end(self, rng, tiny_train):
        architecture = device_fast_architecture("raspberry-pi")
        deployed = api.deploy_architecture(
            architecture,
            "pi",
            num_classes=tiny_train.num_classes,
            name="e2e",
            k=4,
            embed_dim=16,
            train_dataset=tiny_train,
            train_epochs=1,
        )
        stream = [sample.points for sample in tiny_train][:6]
        report = api.serve(deployed, stream, EngineConfig(max_batch_size=3))
        assert len(report.results) == 6
        assert all(0 <= r.label < tiny_train.num_classes for r in report.results)
        assert report.telemetry["models"]["e2e"]["served"] == 6
        # The engine stays usable for follow-up warm traffic.
        warm = report.engine.submit("e2e", stream[0])
        assert warm.from_cache

    def test_deploy_into_existing_registry(self):
        registry = ModelRegistry()
        api.deploy_architecture(tx2_fast_architecture(), "tx2", num_classes=4, registry=registry)
        assert registry.list() == ["tx2_fast"]

    def test_root_lazy_exports(self):
        import repro

        assert repro.search_architecture is api.search_architecture
        assert repro.deploy_architecture is api.deploy_architecture
        assert repro.ModelRegistry is ModelRegistry
        assert "serve" in dir(repro)
        with pytest.raises(AttributeError):
            repro.does_not_exist
